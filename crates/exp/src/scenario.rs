//! The paper's §5.1 simulation scenario, packaged.
//!
//! One *trial* = one seed → one solar realization (eq. 13), one random
//! task set (5 periodic tasks by default, scaled to the target
//! utilization), one 10 000-unit closed-loop run per policy.

use std::sync::Arc;

use harvest_core::batch::{
    simulate_batch_grouped_in, simulate_batch_in, BatchContext, BatchGrouping, BatchLane,
};
use harvest_core::config::SystemConfig;
use harvest_core::fault::FaultPlan;
use harvest_core::policies::{
    EaDvfsScheduler, EdfScheduler, GreedyStretchScheduler, LazyScheduler,
};
use harvest_core::result::{SimError, SimResult};
use harvest_core::scheduler::Scheduler;
use harvest_core::system::{simulate_shared, try_simulate_in_taped, PoolStats, RunContext};
use harvest_cpu::{presets, CpuModel};
use harvest_energy::predictor::{
    EnergyPredictor, EwmaSlotPredictor, MovingAveragePredictor, OraclePredictor,
    PersistencePredictor,
};
use harvest_energy::source::sample_profile;
use harvest_energy::sources::SolarModel;
use harvest_energy::storage::StorageSpec;
use harvest_sim::engine::Watchdog;
use harvest_sim::event::{QueueStats, ReleaseTape};
use harvest_sim::piecewise::PiecewiseConstant;
use harvest_sim::time::{SimDuration, SimTime};
use harvest_task::generator::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// The scheduling policies the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Plain EDF at full speed.
    Edf,
    /// Lazy scheduling (LSA) — the paper's baseline.
    Lsa,
    /// The paper's EA-DVFS.
    EaDvfs,
    /// EA-DVFS without the `s2` cap (§4.3 strawman, ablation only).
    GreedyStretch,
}

impl PolicyKind {
    /// All policies, in report order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Edf,
        PolicyKind::Lsa,
        PolicyKind::EaDvfs,
        PolicyKind::GreedyStretch,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Edf => Box::new(EdfScheduler::new()),
            PolicyKind::Lsa => Box::new(LazyScheduler::new()),
            PolicyKind::EaDvfs => Box::new(EaDvfsScheduler::new()),
            PolicyKind::GreedyStretch => Box::new(GreedyStretchScheduler::new()),
        }
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Edf => "edf",
            PolicyKind::Lsa => "lsa",
            PolicyKind::EaDvfs => "ea-dvfs",
            PolicyKind::GreedyStretch => "greedy-stretch",
        }
    }

    /// Position in [`PolicyKind::ALL`]; indexes per-policy slots.
    const fn index(self) -> usize {
        match self {
            PolicyKind::Edf => 0,
            PolicyKind::Lsa => 1,
            PolicyKind::EaDvfs => 2,
            PolicyKind::GreedyStretch => 3,
        }
    }
}

/// A worker's reusable simulation state: one [`RunContext`] (event
/// queue, ready queue, metrics registry) plus one lazily-built scheduler
/// instance per policy kind.
///
/// A sweep worker owns one `SimPool` for its whole shard, so the
/// steady-state cost of a trial is the simulation itself — no queue
/// reallocation, no policy boxing. Pooled runs are bit-identical to
/// fresh ones (schedulers are [`Scheduler::reset`] before every run;
/// see the `pooled_parity` integration test).
#[derive(Default)]
pub struct SimPool {
    ctx: RunContext,
    policies: [Option<Box<dyn Scheduler>>; 4],
    /// Reusable slabs of the batched SoA engine (heap, SoA storage
    /// state, gather scratch) — materialized on the first batched run.
    batch: BatchContext,
    /// Per-lane scheduler instances for batched runs, one vector per
    /// policy kind, grown to the largest batch width seen.
    lane_policies: [Vec<Box<dyn Scheduler>>; 4],
    /// Per-lane scheduler instances for policy-lockstep batches,
    /// aligned with `arm_kinds`; instances are reused across batches
    /// whose arm sequence matches.
    arm_policies: Vec<Box<dyn Scheduler>>,
    arm_kinds: Vec<PolicyKind>,
}

impl SimPool {
    /// An empty pool; queues and schedulers materialize on first use.
    pub fn new() -> Self {
        SimPool::default()
    }

    /// Reuse counters of the underlying run context.
    pub fn stats(&self) -> PoolStats {
        self.ctx.stats()
    }

    /// Caps retained queue storage (useful between sweeps of very
    /// different sizes; see [`RunContext::shrink_to`]).
    pub fn shrink_to(&mut self, limit: usize) {
        self.ctx.shrink_to(limit);
    }

    /// Event-queue counters of the pooled context (`None` until a run
    /// has materialized the queue). Quarantine reports attach these so
    /// a failing worker's state is inspectable post-mortem.
    pub fn queue_stats(&self) -> Option<QueueStats> {
        self.ctx.queue_stats()
    }

    /// Installs a crash flight recorder on the pooled run context (see
    /// [`RunContext::enable_flight`]): every subsequent scalar run feeds
    /// the shared ring, and watchdog aborts freeze pending dumps.
    pub fn enable_flight(&mut self, capacity: usize) {
        self.ctx.enable_flight(capacity);
    }

    /// The pooled context's flight recorder, when installed — for
    /// driver-side cell markers and panic-path captures.
    pub fn flight(&self) -> Option<&harvest_obs::SharedFlightRecorder> {
        self.ctx.flight()
    }

    /// Drains pending flight dumps (see
    /// [`RunContext::take_flight_dumps`]).
    pub fn take_flight_dumps(&mut self) -> Vec<harvest_obs::flight::FlightDump> {
        self.ctx.take_flight_dumps()
    }

    fn try_run(
        &mut self,
        scenario: &PaperScenario,
        config: SystemConfig,
        policy: PolicyKind,
        prefab: &TrialPrefab,
    ) -> Result<SimResult, SimError> {
        let predictor = scenario.predictor.build_shared(&prefab.profile);
        let sched = self.policies[policy.index()]
            .get_or_insert_with(|| policy.build())
            .as_mut();
        try_simulate_in_taped(
            &mut self.ctx,
            config,
            Arc::clone(&prefab.tasks),
            Arc::clone(&prefab.profile),
            sched,
            predictor,
            prefab.tape.clone(),
        )
    }

    fn run(
        &mut self,
        scenario: &PaperScenario,
        config: SystemConfig,
        policy: PolicyKind,
        prefab: &TrialPrefab,
    ) -> SimResult {
        self.try_run(scenario, config, policy, prefab)
            .unwrap_or_else(|e| panic!("simulation aborted: {e} (use the try_ path)"))
    }

    /// Runs a batch of sibling trials — same scenario and policy,
    /// per-prefab seeds — through the batched SoA engine
    /// ([`simulate_batch_in`]), reusing this pool's slabs and per-lane
    /// scheduler instances. `watchdogs` arms each lane individually
    /// (length must match `prefabs`); a watchdog-armed lane drains
    /// through the scalar fallback, which is where the per-lane
    /// [`SimError`]s can come from. Every lane is bit-identical to the
    /// corresponding scalar [`PaperScenario::try_run_prefab_in`] call
    /// (pinned by the `batched_parity` suite).
    ///
    /// # Panics
    ///
    /// Panics if `watchdogs` and `prefabs` lengths differ.
    pub fn run_batch(
        &mut self,
        scenario: &PaperScenario,
        policy: PolicyKind,
        prefabs: &[&TrialPrefab],
        watchdogs: &[Option<Watchdog>],
    ) -> Vec<Result<SimResult, SimError>> {
        assert_eq!(prefabs.len(), watchdogs.len(), "one watchdog slot per lane");
        let lanes: Vec<BatchLane> = prefabs
            .iter()
            .zip(watchdogs)
            .map(|(prefab, watchdog)| {
                let mut config = scenario.config_for(prefab.seed);
                if let Some(w) = *watchdog {
                    config = config.with_watchdog(w);
                }
                BatchLane {
                    config,
                    tasks: Arc::clone(&prefab.tasks),
                    profile: Arc::clone(&prefab.profile),
                    predictor: scenario.predictor.build_shared(&prefab.profile),
                    tape: prefab.tape.clone(),
                }
            })
            .collect();
        let slot = &mut self.lane_policies[policy.index()];
        while slot.len() < lanes.len() {
            slot.push(policy.build());
        }
        let oracle = scenario.predictor == PredictorKind::Oracle;
        let width = lanes.len();
        simulate_batch_in(
            &mut self.batch,
            &mut self.ctx,
            lanes,
            &mut slot[..width],
            oracle,
        )
    }

    /// Runs a policy-lockstep batch: each lane is one `(policy, prefab)`
    /// arm, so a batch may span the policy arms of one seed — whose
    /// release timelines are identical by construction — or pack the
    /// arms of several sibling seeds. Accounted under the lockstep
    /// [`PoolStats`] fields. Every lane is bit-identical to the
    /// corresponding scalar [`PaperScenario::try_run_prefab_in`] call
    /// (pinned by the `batched_parity` suite).
    ///
    /// # Panics
    ///
    /// Panics if `watchdogs` and `arms` lengths differ.
    pub fn run_batch_arms(
        &mut self,
        scenario: &PaperScenario,
        arms: &[(PolicyKind, &TrialPrefab)],
        watchdogs: &[Option<Watchdog>],
    ) -> Vec<Result<SimResult, SimError>> {
        assert_eq!(arms.len(), watchdogs.len(), "one watchdog slot per lane");
        let lanes: Vec<BatchLane> = arms
            .iter()
            .zip(watchdogs)
            .map(|(&(_, prefab), watchdog)| {
                let mut config = scenario.config_for(prefab.seed);
                if let Some(w) = *watchdog {
                    config = config.with_watchdog(w);
                }
                BatchLane {
                    config,
                    tasks: Arc::clone(&prefab.tasks),
                    profile: Arc::clone(&prefab.profile),
                    predictor: scenario.predictor.build_shared(&prefab.profile),
                    tape: prefab.tape.clone(),
                }
            })
            .collect();
        // Align the cached per-lane scheduler instances with this
        // batch's arm sequence; a stable arm pattern (the common case —
        // the same policy set over consecutive seeds) reuses every
        // instance.
        for (i, &(kind, _)) in arms.iter().enumerate() {
            if i < self.arm_kinds.len() {
                if self.arm_kinds[i] != kind {
                    self.arm_policies[i] = kind.build();
                    self.arm_kinds[i] = kind;
                }
            } else {
                self.arm_policies.push(kind.build());
                self.arm_kinds.push(kind);
            }
        }
        let oracle = scenario.predictor == PredictorKind::Oracle;
        let width = lanes.len();
        simulate_batch_grouped_in(
            &mut self.batch,
            &mut self.ctx,
            lanes,
            &mut self.arm_policies[..width],
            oracle,
            BatchGrouping::PolicyLockstep,
        )
    }
}

impl std::fmt::Debug for SimPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPool")
            .field("stats", &self.ctx.stats())
            .field(
                "policies",
                &self
                    .policies
                    .iter()
                    .flatten()
                    .map(|p| p.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// The harvested-energy predictors available to the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PredictorKind {
    /// Clairvoyant profile tracing (the reproduction default; see
    /// DESIGN.md).
    #[default]
    Oracle,
    /// Kansal-style slotted EWMA over the solar quasi-period.
    Ewma,
    /// Trailing moving average (window in time units).
    MovingAverage {
        /// Window length in whole time units.
        window: i64,
    },
    /// Last observed power persists.
    Persistence,
    /// The oracle scaled by a constant factor — systematic optimism
    /// (`factor > 1`) or pessimism (`factor < 1`) for robustness
    /// studies.
    Biased {
        /// Multiplicative prediction bias.
        factor: f64,
    },
}

impl PredictorKind {
    /// Instantiates the predictor for a given realized profile.
    pub fn build(self, profile: &PiecewiseConstant) -> Box<dyn EnergyPredictor> {
        self.build_shared(&Arc::new(profile.clone()))
    }

    /// Instantiates the predictor over an already-shared profile —
    /// profile-tracing predictors reference it instead of copying its
    /// breakpoint tables.
    pub fn build_shared(self, profile: &Arc<PiecewiseConstant>) -> Box<dyn EnergyPredictor> {
        match self {
            PredictorKind::Oracle => Box::new(OraclePredictor::from_shared(Arc::clone(profile))),
            PredictorKind::Ewma => {
                // The eq. 13 envelope cos²(t/70π) has period π·70π ≈ 691;
                // 48 slots of ~14.4 units resolve it well.
                let period =
                    SimDuration::from_units(std::f64::consts::PI * 70.0 * std::f64::consts::PI);
                let slots = 48;
                let period =
                    SimDuration::from_ticks(period.as_ticks() / slots as i64 * slots as i64);
                let mut p = EwmaSlotPredictor::new(period, slots, 0.3);
                // Seed with the climatological mean so the first cycle is
                // not flying blind.
                let mean = profile.domain_mean();
                p.seed_estimates(&vec![mean; slots]);
                Box::new(p)
            }
            PredictorKind::MovingAverage { window } => Box::new(MovingAveragePredictor::new(
                SimDuration::from_whole_units(window),
            )),
            PredictorKind::Persistence => Box::new(PersistencePredictor::new()),
            PredictorKind::Biased { factor } => {
                Box::new(harvest_energy::predictor::BiasedPredictor::new(
                    OraclePredictor::from_shared(Arc::clone(profile)),
                    factor,
                ))
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Oracle => "oracle",
            PredictorKind::Ewma => "ewma",
            PredictorKind::MovingAverage { .. } => "moving-average",
            PredictorKind::Persistence => "persistence",
            PredictorKind::Biased { .. } => "biased-oracle",
        }
    }
}

/// One seeded trial's shared inputs, built once and handed to every
/// run that replays the trial: the solar realization (with its
/// prefix-sum integral table) and the generated task set, both behind
/// `Arc`.
///
/// Neither depends on the storage capacity or the policy, so a sweep
/// over capacities × policies — the shape of every Fig. 5–9 experiment
/// — builds each prefab once per seed instead of re-sampling the solar
/// model and re-generating the workload inside every trial closure.
#[derive(Debug, Clone)]
pub struct TrialPrefab {
    /// The seed the trial was derived from.
    pub seed: u64,
    /// The realized harvest profile `PS(t)` (eq. 13 sampling).
    pub profile: Arc<PiecewiseConstant>,
    /// The generated periodic task set, scaled to the target
    /// utilization against this profile's mean power.
    pub tasks: Arc<harvest_task::TaskSet>,
    /// The precomputed release timeline over the scenario horizon,
    /// shared by every run that replays the trial (releases are seed-
    /// and policy-independent). `None` routes releases through the
    /// event queue — the reference path, kept for benchmarks and
    /// parity baselines via [`Self::without_tape`].
    pub tape: Option<Arc<ReleaseTape>>,
}

impl TrialPrefab {
    /// Drops the precomputed release tape, forcing every run of this
    /// prefab onto the heap-driven reference path. Results are
    /// bit-identical either way (pinned by the tape-parity suites).
    pub fn without_tape(mut self) -> Self {
        self.tape = None;
        self
    }
}

/// Deterministic fault injection for robustness sweeps: one intensity
/// knob in `[0, 1]`, expanded per trial seed into a concrete
/// [`FaultPlan`] (blackouts/brownouts, storage degradation, DVFS level
/// lockouts, predictor corruption — see [`FaultPlan::generate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Fault intensity in `[0, 1]`; `0` injects nothing.
    pub intensity: f64,
}

/// A fully specified §5.1 scenario (everything but the seed and policy).
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct PaperScenario {
    /// Number of periodic tasks (paper figures use 5).
    pub num_tasks: usize,
    /// Target utilization `U`.
    pub utilization: f64,
    /// Storage capacity `C`.
    pub capacity: f64,
    /// Simulation horizon in whole time units (paper: 10 000).
    pub horizon_units: i64,
    /// Storage sampling interval in whole time units, if the run should
    /// record the remaining-energy curve.
    pub sample_interval_units: Option<i64>,
    /// Solar sampling step in whole time units (paper: 1).
    pub source_dt_units: i64,
    /// Predictor to drive the policies with.
    pub predictor: PredictorKind,
    /// Deterministic fault injection, if this is a robustness-sweep
    /// cell. `None` (the default) runs fault-free.
    pub fault: Option<FaultScenario>,
}

// Hand-written so a fault-free scenario serializes exactly as it did
// before the `fault` field existed: trial cache keys embed this
// serialization (see `crate::cache`), so omitting the `None` entry
// keeps every previously-cached fault-free cell addressable.
impl Serialize for PaperScenario {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("num_tasks".to_string(), self.num_tasks.to_value()),
            ("utilization".to_string(), self.utilization.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
            ("horizon_units".to_string(), self.horizon_units.to_value()),
            (
                "sample_interval_units".to_string(),
                self.sample_interval_units.to_value(),
            ),
            (
                "source_dt_units".to_string(),
                self.source_dt_units.to_value(),
            ),
            ("predictor".to_string(), self.predictor.to_value()),
        ];
        if let Some(fault) = &self.fault {
            fields.push(("fault".to_string(), fault.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl PaperScenario {
    /// The paper's defaults for a given utilization and capacity:
    /// 5 tasks, 10 000-unit horizon, 1-unit source sampling, oracle
    /// predictor.
    pub fn new(utilization: f64, capacity: f64) -> Self {
        PaperScenario {
            num_tasks: 5,
            utilization,
            capacity,
            horizon_units: 10_000,
            sample_interval_units: None,
            source_dt_units: 1,
            predictor: PredictorKind::default(),
            fault: None,
        }
    }

    /// Enables remaining-energy sampling on the given grid.
    pub fn with_sampling(mut self, interval_units: i64) -> Self {
        self.sample_interval_units = Some(interval_units);
        self
    }

    /// Swaps the predictor.
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Arms deterministic fault injection at the given intensity. Zero
    /// disarms it, keeping the scenario — and its trial cache keys —
    /// identical to a fault-free one.
    ///
    /// # Panics
    ///
    /// Panics unless `intensity` lies in `[0, 1]`.
    pub fn with_fault_intensity(mut self, intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && (0.0..=1.0).contains(&intensity),
            "fault intensity must lie in [0, 1]"
        );
        self.fault = (intensity > 0.0).then_some(FaultScenario { intensity });
        self
    }

    /// Expands the scenario's fault knob into one trial's concrete
    /// [`FaultPlan`]. `None` when the scenario is fault-free or the
    /// seed draws an empty plan.
    pub fn fault_plan(&self, seed: u64) -> Option<FaultPlan> {
        let fault = self.fault?;
        let plan = FaultPlan::generate(
            seed,
            fault.intensity,
            SimDuration::from_whole_units(self.horizon_units),
            &self.cpu(),
        );
        (!plan.is_empty()).then_some(plan)
    }

    /// The processor all scenarios use (the paper's XScale table).
    pub fn cpu(&self) -> CpuModel {
        presets::xscale()
    }

    /// Samples the trial's solar realization.
    pub fn profile(&self, seed: u64) -> PiecewiseConstant {
        sample_profile(
            &mut SolarModel::paper(),
            SimTime::ZERO,
            SimDuration::from_whole_units(self.horizon_units),
            SimDuration::from_whole_units(self.source_dt_units),
            seed,
        )
        .expect("paper scenario grid is valid")
    }

    /// Generates the trial's task set, sized against the realized mean
    /// harvest power (§5.1).
    pub fn taskset(&self, seed: u64, profile: &PiecewiseConstant) -> harvest_task::TaskSet {
        let cpu = self.cpu();
        let spec = WorkloadSpec::paper(
            self.num_tasks,
            self.utilization,
            profile.domain_mean(),
            cpu.max_power(),
        );
        // Decorrelate the workload stream from the solar stream.
        spec.generate(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// Builds the trial's shared inputs once: the solar realization and
    /// the task set, ready to be replayed under any capacity or policy
    /// via [`run_prefab`](Self::run_prefab).
    pub fn prefab(&self, seed: u64) -> TrialPrefab {
        let profile = Arc::new(self.profile(seed));
        let tasks = Arc::new(self.taskset(seed, &profile));
        let tape = Arc::new(tasks.release_tape(SimDuration::from_whole_units(self.horizon_units)));
        TrialPrefab {
            seed,
            profile,
            tasks,
            tape: Some(tape),
        }
    }

    /// The scenario's system configuration, with sampling applied when
    /// requested.
    pub fn config(&self) -> SystemConfig {
        let mut config = SystemConfig::new(
            self.cpu(),
            StorageSpec::ideal(self.capacity),
            SimDuration::from_whole_units(self.horizon_units),
        );
        if let Some(dt) = self.sample_interval_units {
            config = config.with_sample_interval(SimDuration::from_whole_units(dt));
        }
        config
    }

    /// [`config`](Self::config) specialized to one trial: the fault
    /// knob, if armed, becomes the seed's concrete fault plan.
    pub fn config_for(&self, seed: u64) -> SystemConfig {
        let mut config = self.config();
        if let Some(plan) = self.fault_plan(seed) {
            config = config.with_fault_plan(plan);
        }
        config
    }

    fn run_prefab_config(
        &self,
        config: SystemConfig,
        policy: PolicyKind,
        prefab: &TrialPrefab,
    ) -> SimResult {
        let predictor = self.predictor.build_shared(&prefab.profile);
        simulate_shared(
            config,
            Arc::clone(&prefab.tasks),
            Arc::clone(&prefab.profile),
            policy.build(),
            predictor,
        )
    }

    /// Runs one policy on a prebuilt trial, sharing its profile and
    /// task set instead of regenerating them.
    pub fn run_prefab(&self, policy: PolicyKind, prefab: &TrialPrefab) -> SimResult {
        self.run_prefab_config(self.config_for(prefab.seed), policy, prefab)
    }

    /// [`run_prefab`](Self::run_prefab) through a worker's [`SimPool`]:
    /// reuses the pool's queues, metrics registry, and scheduler
    /// instance instead of allocating per run. Bit-identical to
    /// [`run_prefab`](Self::run_prefab).
    pub fn run_prefab_in(
        &self,
        pool: &mut SimPool,
        policy: PolicyKind,
        prefab: &TrialPrefab,
    ) -> SimResult {
        pool.run(self, self.config_for(prefab.seed), policy, prefab)
    }

    /// [`run_prefab_in`](Self::run_prefab_in) with an optional engine
    /// watchdog: a run that exhausts its event budget returns a typed
    /// [`SimError`] instead of spinning forever, and the pool stays
    /// reusable afterwards.
    pub fn try_run_prefab_in(
        &self,
        pool: &mut SimPool,
        policy: PolicyKind,
        prefab: &TrialPrefab,
        watchdog: Option<Watchdog>,
    ) -> Result<SimResult, SimError> {
        let mut config = self.config_for(prefab.seed);
        if let Some(w) = watchdog {
            config = config.with_watchdog(w);
        }
        pool.try_run(self, config, policy, prefab)
    }

    /// The content-address of one of this scenario's trials (see
    /// [`crate::cache`]).
    pub fn trial_key(&self, policy: PolicyKind, seed: u64) -> crate::cache::TrialKey {
        crate::cache::TrialKey::new(self, policy, seed)
    }

    /// Runs one trial through a worker's pool, consulting `store`
    /// first: a verified store hit skips the simulation entirely, and a
    /// miss is simulated pooled and written back. Accepts any
    /// [`TrialStore`](crate::store::TrialStore) backend — the per-file
    /// [`SweepCache`](crate::cache::SweepCache) or the pack-file
    /// [`PackStore`](crate::store::PackStore).
    pub fn run_summary(
        &self,
        pool: &mut SimPool,
        store: Option<&dyn crate::store::TrialStore>,
        policy: PolicyKind,
        prefab: &TrialPrefab,
    ) -> crate::cache::TrialSummary {
        let key = store.map(|c| (c, self.trial_key(policy, prefab.seed)));
        if let Some((c, key)) = &key {
            if let Some(summary) = c.probe(key) {
                return summary;
            }
        }
        let summary = crate::cache::TrialSummary::of(&self.run_prefab_in(pool, policy, prefab));
        if let Some((c, key)) = &key {
            c.store(key, &summary);
        }
        summary
    }

    /// [`run_summary`](Self::run_summary) through the fallible path:
    /// store hits short-circuit as before, a clean run is summarized
    /// and written back, and a watchdog abort propagates *unstored* —
    /// the watchdog budget is deliberately not part of the trial key,
    /// so an aborted cell must never poison the store.
    pub fn try_run_summary(
        &self,
        pool: &mut SimPool,
        store: Option<&dyn crate::store::TrialStore>,
        policy: PolicyKind,
        prefab: &TrialPrefab,
        watchdog: Option<Watchdog>,
    ) -> Result<crate::cache::TrialSummary, SimError> {
        let key = store.map(|c| (c, self.trial_key(policy, prefab.seed)));
        if let Some((c, key)) = &key {
            if let Some(summary) = c.probe(key) {
                return Ok(summary);
            }
        }
        let result = self.try_run_prefab_in(pool, policy, prefab, watchdog)?;
        let summary = crate::cache::TrialSummary::of(&result);
        if let Some((c, key)) = &key {
            c.store(key, &summary);
        }
        Ok(summary)
    }

    /// Runs one policy over a batch of sibling prefabs through the
    /// batched SoA engine, one [`SimResult`] per prefab in order.
    /// Bit-identical to calling [`run_prefab_in`](Self::run_prefab_in)
    /// per prefab; with no watchdog armed the engine cannot fail, so
    /// the results are unwrapped.
    pub fn run_prefabs_batched_in(
        &self,
        pool: &mut SimPool,
        policy: PolicyKind,
        prefabs: &[&TrialPrefab],
    ) -> Vec<SimResult> {
        let watchdogs = vec![None; prefabs.len()];
        pool.run_batch(self, policy, prefabs, &watchdogs)
            .into_iter()
            .map(|r| r.expect("no watchdog armed, the engine cannot abort"))
            .collect()
    }

    /// [`run_summary`](Self::run_summary) over a batch of sibling
    /// prefabs: store hits resolve through one batch probe, the
    /// remaining cells run as one batch through the SoA engine, and
    /// fresh summaries are written back. Returns one summary per prefab
    /// in order.
    pub fn run_summaries_batched(
        &self,
        pool: &mut SimPool,
        store: Option<&dyn crate::store::TrialStore>,
        policy: PolicyKind,
        prefabs: &[&TrialPrefab],
    ) -> Vec<crate::cache::TrialSummary> {
        let mut summaries: Vec<Option<crate::cache::TrialSummary>> = match store {
            Some(c) => {
                let keys: Vec<crate::cache::TrialKey> = prefabs
                    .iter()
                    .map(|p| self.trial_key(policy, p.seed))
                    .collect();
                c.probe_many(&keys)
            }
            None => vec![None; prefabs.len()],
        };
        let pending: Vec<usize> = (0..prefabs.len())
            .filter(|&i| summaries[i].is_none())
            .collect();
        if !pending.is_empty() {
            let lanes: Vec<&TrialPrefab> = pending.iter().map(|&i| prefabs[i]).collect();
            let results = self.run_prefabs_batched_in(pool, policy, &lanes);
            for (&i, result) in pending.iter().zip(&results) {
                let summary = crate::cache::TrialSummary::of(result);
                if let Some(c) = store {
                    c.store(&self.trial_key(policy, prefabs[i].seed), &summary);
                }
                summaries[i] = Some(summary);
            }
        }
        summaries
            .into_iter()
            .map(|s| s.expect("every cell resolved"))
            .collect()
    }

    /// Runs a policy-lockstep batch of `(policy, prefab)` arms through
    /// the batched SoA engine, one [`SimResult`] per arm in order.
    /// Bit-identical to calling [`run_prefab_in`](Self::run_prefab_in)
    /// per arm; with no watchdog armed the engine cannot fail, so the
    /// results are unwrapped.
    pub fn run_arms_batched_in(
        &self,
        pool: &mut SimPool,
        arms: &[(PolicyKind, &TrialPrefab)],
    ) -> Vec<SimResult> {
        let watchdogs = vec![None; arms.len()];
        pool.run_batch_arms(self, arms, &watchdogs)
            .into_iter()
            .map(|r| r.expect("no watchdog armed, the engine cannot abort"))
            .collect()
    }

    /// [`run_summaries_batched`](Self::run_summaries_batched) for a
    /// policy-lockstep group: store hits resolve through one batch
    /// probe, the remaining `(policy, prefab)` arms run as one lockstep
    /// batch, and fresh summaries are written back. Returns one summary
    /// per arm in order.
    pub fn run_arm_summaries_batched(
        &self,
        pool: &mut SimPool,
        store: Option<&dyn crate::store::TrialStore>,
        arms: &[(PolicyKind, &TrialPrefab)],
    ) -> Vec<crate::cache::TrialSummary> {
        let mut summaries: Vec<Option<crate::cache::TrialSummary>> = match store {
            Some(c) => {
                let keys: Vec<crate::cache::TrialKey> = arms
                    .iter()
                    .map(|&(policy, p)| self.trial_key(policy, p.seed))
                    .collect();
                c.probe_many(&keys)
            }
            None => vec![None; arms.len()],
        };
        let pending: Vec<usize> = (0..arms.len())
            .filter(|&i| summaries[i].is_none())
            .collect();
        if !pending.is_empty() {
            let lanes: Vec<(PolicyKind, &TrialPrefab)> = pending.iter().map(|&i| arms[i]).collect();
            let results = self.run_arms_batched_in(pool, &lanes);
            for (&i, result) in pending.iter().zip(&results) {
                let summary = crate::cache::TrialSummary::of(result);
                if let Some(c) = store {
                    let (policy, prefab) = arms[i];
                    c.store(&self.trial_key(policy, prefab.seed), &summary);
                }
                summaries[i] = Some(summary);
            }
        }
        summaries
            .into_iter()
            .map(|s| s.expect("every cell resolved"))
            .collect()
    }

    /// [`run_prefab`](Self::run_prefab) with full observability — trace,
    /// metrics snapshot, and phase profiling all enabled. This is the
    /// configuration `exp record` captures JSONL artifacts with; sweeps
    /// keep using the lean [`run_prefab`](Self::run_prefab) path.
    pub fn run_prefab_observed(&self, policy: PolicyKind, prefab: &TrialPrefab) -> SimResult {
        let config = self
            .config_for(prefab.seed)
            .with_trace()
            .with_metrics()
            .with_profiling();
        self.run_prefab_config(config, policy, prefab)
    }

    /// Runs one policy on one seeded trial.
    pub fn run(&self, policy: PolicyKind, seed: u64) -> SimResult {
        self.run_prefab(policy, &self.prefab(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_build_with_matching_names() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let s = PaperScenario::new(0.4, 500.0);
        let a = s.run(PolicyKind::EaDvfs, 7);
        let b = s.run(PolicyKind::EaDvfs, 7);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.events, b.events, "event counts must replay exactly");
        assert_eq!(a.trace_events, b.trace_events);
    }

    #[test]
    fn prefab_replays_identically_across_capacities() {
        // One prefab serves every capacity sweep point; results must
        // match runs that rebuild the trial from scratch.
        let seed = 5;
        let base = PaperScenario::new(0.6, 200.0);
        let prefab = base.prefab(seed);
        for capacity in [200.0, 1000.0] {
            let s = PaperScenario::new(0.6, capacity);
            let fresh = s.run(PolicyKind::EaDvfs, seed);
            let shared = s.run_prefab(PolicyKind::EaDvfs, &prefab);
            assert_eq!(fresh.jobs, shared.jobs, "capacity {capacity}");
            assert_eq!(fresh.energy, shared.energy, "capacity {capacity}");
            assert_eq!(fresh.events, shared.events, "capacity {capacity}");
        }
    }

    #[test]
    fn seeds_vary_workload() {
        let s = PaperScenario::new(0.4, 500.0);
        let a = s.run(PolicyKind::Lsa, 1);
        let b = s.run(PolicyKind::Lsa, 2);
        assert_ne!(a.jobs.len(), 0);
        assert_ne!(a.jobs, b.jobs);
    }

    #[test]
    fn sampling_produces_grid() {
        let s = PaperScenario::new(0.4, 500.0).with_sampling(500);
        let r = s.run(PolicyKind::EaDvfs, 3);
        assert_eq!(r.samples.len(), 20);
    }

    #[test]
    fn fault_free_serialization_is_unchanged() {
        // Cache keys embed this serialization: a fault-free scenario
        // must not mention the `fault` field at all, or every
        // pre-existing cache entry would orphan.
        let s = PaperScenario::new(0.4, 500.0);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("fault"), "fault leaked into the key: {json}");
        let armed = s.clone().with_fault_intensity(0.5);
        let armed_json = serde_json::to_string(&armed).unwrap();
        assert!(armed_json.contains("\"fault\""), "{armed_json}");
        assert_ne!(json, armed_json, "faulted cells need distinct keys");
        // Zero intensity disarms and round-trips back to the same key.
        let disarmed = armed.with_fault_intensity(0.0);
        assert_eq!(serde_json::to_string(&disarmed).unwrap(), json);
        // And the serialization round-trips through the derived
        // Deserialize (missing `fault` key reads as `None`).
        let back: PaperScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let back: PaperScenario = serde_json::from_str(&armed_json).unwrap();
        assert_eq!(back.fault, Some(FaultScenario { intensity: 0.5 }));
    }

    #[test]
    fn fault_plans_are_per_seed_and_deterministic() {
        let s = PaperScenario::new(0.4, 500.0).with_fault_intensity(0.6);
        assert!(s.fault_plan(3).is_some());
        assert_eq!(s.fault_plan(3), s.fault_plan(3));
        assert_ne!(s.fault_plan(3), s.fault_plan(4), "plans vary by seed");
        assert_eq!(PaperScenario::new(0.4, 500.0).fault_plan(3), None);
    }

    #[test]
    fn faulted_runs_replay_identically_and_differ_from_clean() {
        let clean = PaperScenario::new(0.4, 300.0);
        let faulted = clean.clone().with_fault_intensity(0.8);
        let a = faulted.run(PolicyKind::EaDvfs, 2);
        let b = faulted.run(PolicyKind::EaDvfs, 2);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.events, b.events);
        let base = clean.run(PolicyKind::EaDvfs, 2);
        assert_ne!(
            a.energy, base.energy,
            "intensity 0.8 must perturb the trial"
        );
    }

    #[test]
    fn try_paths_match_infallible_ones() {
        let s = PaperScenario::new(0.4, 500.0).with_fault_intensity(0.3);
        let prefab = s.prefab(1);
        let mut pool = SimPool::new();
        let plain = s.run_prefab_in(&mut pool, PolicyKind::Lsa, &prefab);
        let tried = s
            .try_run_prefab_in(&mut pool, PolicyKind::Lsa, &prefab, None)
            .expect("no watchdog, no abort");
        assert_eq!(plain.jobs, tried.jobs);
        assert_eq!(plain.energy, tried.energy);
        assert!(pool.queue_stats().is_some(), "runs materialize the queue");
    }

    #[test]
    fn try_run_summary_surfaces_watchdog_aborts() {
        let s = PaperScenario::new(0.4, 500.0);
        let prefab = s.prefab(0);
        let mut pool = SimPool::new();
        let err = s
            .try_run_summary(
                &mut pool,
                None,
                PolicyKind::EaDvfs,
                &prefab,
                Some(Watchdog::with_max_events(3)),
            )
            .expect_err("3 events cannot finish a 10k-unit run");
        assert!(matches!(err, SimError::WatchdogEventBudget { .. }));
        // The pool heals: the same cell succeeds without the watchdog.
        let summary = s
            .try_run_summary(&mut pool, None, PolicyKind::EaDvfs, &prefab, None)
            .unwrap();
        assert!(summary.released > 0);
    }

    #[test]
    fn predictors_build() {
        let s = PaperScenario::new(0.4, 500.0);
        let profile = s.profile(0);
        for kind in [
            PredictorKind::Oracle,
            PredictorKind::Ewma,
            PredictorKind::MovingAverage { window: 100 },
            PredictorKind::Persistence,
        ] {
            let p = kind.build(&profile);
            let e = p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(10));
            assert!(e >= 0.0 && e.is_finite(), "{}: {e}", kind.name());
        }
    }
}
