//! Machine-readable experiment records.
//!
//! Every figure/table struct in [`crate::figures`] derives `Serialize`;
//! this module wraps one in a provenance envelope and writes it as
//! pretty JSON so downstream tooling (plotting scripts, regression
//! dashboards) can consume reproduction outputs without parsing text
//! reports.

use std::io;
use std::path::Path;

use serde::Serialize;

/// Provenance envelope around a serialized experiment artifact.
#[derive(Debug, Clone, Serialize)]
pub struct Record<T> {
    /// Artifact identifier, e.g. `"fig8"`.
    pub name: String,
    /// Workspace version that produced the record.
    pub produced_by: String,
    /// Trials per experimental point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// The artifact itself.
    pub data: T,
}

impl<T: Serialize> Record<T> {
    /// Wraps `data` with provenance.
    pub fn new(name: &str, trials: usize, seed: u64, data: T) -> Self {
        Record {
            name: name.to_owned(),
            produced_by: format!("harvest-rt {}", env!("CARGO_PKG_VERSION")),
            trials,
            seed,
            data,
        }
    }

    /// Serializes the record as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (cannot occur for the figure
    /// types in this crate, which contain only plain data).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Writes the record to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the filesystem.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        std::fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::source_figure;

    #[test]
    fn record_round_trips_through_json() {
        let fig = source_figure(3, 50);
        let record = Record::new("fig5", 1, 3, fig.clone());
        let json = record.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["name"], "fig5");
        assert_eq!(value["seed"], 3);
        assert_eq!(value["data"]["power"].as_array().unwrap().len(), 50);
        assert!(value["produced_by"]
            .as_str()
            .unwrap()
            .starts_with("harvest-rt"));
    }

    #[test]
    fn write_to_creates_file() {
        let dir = std::env::temp_dir().join("harvest_rt_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig5.json");
        let record = Record::new("fig5", 1, 0, source_figure(0, 10));
        record.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"fig5\""));
        std::fs::remove_file(&path).ok();
    }
}
