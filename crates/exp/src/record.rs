//! Machine-readable experiment records.
//!
//! Every figure/table struct in [`crate::figures`] derives `Serialize`;
//! this module wraps one in a provenance envelope and writes it as
//! pretty JSON so downstream tooling (plotting scripts, regression
//! dashboards) can consume reproduction outputs without parsing text
//! reports.

use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Why a record failed to reach disk — serialization and filesystem
/// failures stay distinguishable instead of both collapsing into a
/// generic `io::Error`.
#[derive(Debug)]
pub enum RecordError {
    /// The artifact failed to serialize.
    Serialize(serde_json::Error),
    /// The filesystem rejected the write.
    Io {
        /// Destination that could not be written.
        path: PathBuf,
        /// The underlying IO error.
        source: io::Error,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Serialize(e) => write!(f, "cannot serialize record: {e}"),
            RecordError::Io { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Serialize(_) => None,
            RecordError::Io { source, .. } => Some(source),
        }
    }
}

/// Provenance envelope around a serialized experiment artifact.
#[derive(Debug, Clone, Serialize)]
pub struct Record<T> {
    /// Artifact identifier, e.g. `"fig8"`.
    pub name: String,
    /// Workspace version that produced the record.
    pub produced_by: String,
    /// Trials per experimental point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// The artifact itself.
    pub data: T,
}

impl<T: Serialize> Record<T> {
    /// Wraps `data` with provenance.
    pub fn new(name: &str, trials: usize, seed: u64, data: T) -> Self {
        Record {
            name: name.to_owned(),
            produced_by: format!("harvest-rt {}", env!("CARGO_PKG_VERSION")),
            trials,
            seed,
            data,
        }
    }

    /// Serializes the record as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (cannot occur for the figure
    /// types in this crate, which contain only plain data).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Writes the record to `path`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`RecordError`] naming whether serialization or
    /// the filesystem failed (and where).
    pub fn write_to(&self, path: &Path) -> Result<(), RecordError> {
        let json = self.to_json().map_err(RecordError::Serialize)?;
        std::fs::write(path, json).map_err(|source| RecordError::Io {
            path: path.to_owned(),
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::source_figure;

    #[test]
    fn record_round_trips_through_json() {
        let fig = source_figure(3, 50);
        let record = Record::new("fig5", 1, 3, fig.clone());
        let json = record.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["name"], "fig5");
        assert_eq!(value["seed"], 3);
        assert_eq!(value["data"]["power"].as_array().unwrap().len(), 50);
        assert!(value["produced_by"]
            .as_str()
            .unwrap()
            .starts_with("harvest-rt"));
    }

    #[test]
    fn write_errors_are_typed_and_name_the_path() {
        let record = Record::new("fig5", 1, 0, source_figure(0, 5));
        let bad = std::env::temp_dir()
            .join("harvest-rt-no-such-dir")
            .join("x.json");
        let err = record.write_to(&bad).unwrap_err();
        match &err {
            RecordError::Io { path, .. } => assert_eq!(path, &bad),
            other => panic!("expected Io error, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("cannot write") && msg.contains("x.json"),
            "{msg}"
        );
    }

    #[test]
    fn write_to_creates_file() {
        let dir = std::env::temp_dir().join("harvest_rt_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig5.json");
        let record = Record::new("fig5", 1, 0, source_figure(0, 10));
        record.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"fig5\""));
        std::fs::remove_file(&path).ok();
    }
}
