//! Robustness figure: deadline miss rate vs. fault intensity.
//!
//! Not a figure from the paper — a robustness extension: the §5.1
//! scenario is re-run under deterministic fault injection
//! ([`crate::scenario::FaultScenario`]) with the intensity knob swept
//! from 0 (fault-free, reproducing the paper's operating point) to 1
//! (heavy blackouts, storage fade, DVFS level lockouts), for each
//! policy × predictor pair.
//!
//! The driver doubles as the harness-resilience integration point: it
//! runs cells through the quarantining parallel map (a panicking cell
//! is reported, not fatal), honors an engine watchdog (a stuck cell
//! aborts with a typed error and is quarantined), consults the trial
//! store, and checkpoints every decided cell into an optional
//! [`DecidedStore`] — the JSONL
//! [`SweepManifest`](crate::manifest::SweepManifest) or the pack-file
//! [`PackStore`](crate::store::PackStore), whose decided records make
//! resume and cache one read path — so a killed campaign resumes
//! without re-simulating finished cells.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use harvest_obs::flight::FlightDump;
use harvest_obs::progress::CellDecision;
use harvest_obs::span::{SpanSink, CAT_BUILD, CAT_FIGURE, CAT_PROBE, CAT_SIMULATE, TID_DRIVER};
use harvest_sim::engine::Watchdog;
use harvest_sim::event::QueueStats;

use super::SweepExecStats;
use crate::cache::{fnv1a64, TrialKey, TrialSummary};
use crate::manifest::CellOutcome;
use crate::parallel::{default_threads, parallel_map, parallel_map_quarantined, CellFailure};
use crate::scenario::{PaperScenario, PolicyKind, PredictorKind, SimPool, TrialPrefab};
use crate::store::{store_from_env, DecidedStore, TrialStore};
use crate::telemetry::{write_flight_dump, CampaignTelemetry};

/// One intensity point of a robustness sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Mean miss rate per (predictor, policy) pair, predictor-major —
    /// index `pi * policies.len() + pj`.
    pub miss_rates: Vec<f64>,
    /// Decided trials behind each mean (quarantined cells are excluded
    /// from the mean and from this count).
    pub decided: Vec<u64>,
}

/// Data behind the robustness figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessFigure {
    /// Workload utilization.
    pub utilization: f64,
    /// Storage capacity.
    pub capacity: f64,
    /// Policies, in column order.
    pub policies: Vec<PolicyKind>,
    /// Predictors, in (major) column order.
    pub predictors: Vec<PredictorKind>,
    /// One row per swept intensity, ascending.
    pub rows: Vec<RobustnessRow>,
    /// Task sets per grid cell.
    pub trials: usize,
}

impl RobustnessFigure {
    /// The miss-rate curve of one (predictor, policy) pair, aligned
    /// with `rows`.
    pub fn curve(&self, predictor: PredictorKind, policy: PolicyKind) -> Option<Vec<f64>> {
        let pi = self.predictors.iter().position(|&p| p == predictor)?;
        let pj = self.policies.iter().position(|&p| p == policy)?;
        let idx = pi * self.policies.len() + pj;
        Some(self.rows.iter().map(|r| r.miss_rates[idx]).collect())
    }

    /// Content digest of the figure data (FNV-1a over its canonical
    /// JSON) — what the resume smoke compares across campaign runs.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("figure is plain data");
        fnv1a64(json.as_bytes())
    }
}

/// One cell of the robustness grid, as shown to the sabotage hook.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The row's fault intensity.
    pub intensity: f64,
    /// The cell's policy.
    pub policy: PolicyKind,
    /// The cell's predictor.
    pub predictor: PredictorKind,
    /// The cell's trial seed.
    pub seed: u64,
}

/// Deterministic failure injection for harness smoke tests: what the
/// sabotage hook may do to one cell. The production path passes a hook
/// that always returns [`Sabotage::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// Run the cell normally.
    #[default]
    None,
    /// Panic inside the cell (exercises panic quarantine).
    Panic,
    /// Run the cell under a tiny watchdog budget, forcing a typed
    /// watchdog abort (exercises error quarantine).
    Starve,
}

/// Grid and execution parameters of one robustness campaign.
#[derive(Debug, Clone)]
pub struct RobustnessConfig {
    /// Workload utilization.
    pub utilization: f64,
    /// Storage capacity (scarce by default, so faults visibly move the
    /// miss rate).
    pub capacity: f64,
    /// Horizon in whole time units.
    pub horizon_units: i64,
    /// Fault intensities to sweep, ascending, each in `[0, 1]`.
    pub intensities: Vec<f64>,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Predictors to cross with the policies.
    pub predictors: Vec<PredictorKind>,
    /// Task sets per grid cell.
    pub trials: usize,
    /// Worker threads.
    pub threads: usize,
    /// Sibling trials dispatched per engine pass: pending cells that
    /// share a grid point are grouped into batches of at most this many
    /// lanes. Quarantine granularity follows the batch — a panic inside
    /// a batched pass quarantines every lane of that batch. Note the
    /// default [`watchdog`](Self::watchdog) makes every lane
    /// scalar-drain inside [`harvest_core::simulate_batch_in`] (a
    /// watchdogged lane is ineligible for the fused loop), so batching
    /// here changes dispatch granularity, not the inner simulation path.
    pub batch: usize,
    /// Watchdog armed on every cell — the campaign-level stuck-trial
    /// guard. The default budget is far above any legitimate §5.1 run.
    pub watchdog: Option<Watchdog>,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            utilization: 0.4,
            capacity: 300.0,
            horizon_units: 10_000,
            intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            policies: vec![PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs],
            predictors: vec![PredictorKind::Oracle],
            trials: 5,
            threads: default_threads(),
            batch: 1,
            watchdog: Some(Watchdog::with_max_events(5_000_000)),
        }
    }
}

/// One quarantined cell: its identity (the canonical trial key plus
/// the human-relevant coordinates) and what went wrong.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Canonical trial key text (scenario + policy + seed).
    pub key: String,
    /// The cell's policy.
    pub policy: PolicyKind,
    /// The cell's trial seed.
    pub seed: u64,
    /// The row's fault intensity.
    pub intensity: f64,
    /// The caught panic or typed simulation error.
    pub failure: CellFailure,
}

/// Everything one campaign run produced: the figure, the quarantine
/// report, and execution accounting.
#[derive(Debug)]
pub struct CampaignReport {
    /// The aggregated figure (quarantined cells excluded from means).
    pub figure: RobustnessFigure,
    /// Cells that panicked or aborted, in grid order.
    pub quarantined: Vec<QuarantineRecord>,
    /// Simulated/cached cell counts and pooled-context reuse.
    pub exec: SweepExecStats,
    /// Cells resolved from the manifest (a resumed campaign's skipped
    /// work).
    pub resumed: u64,
    /// Per-worker event-queue statistics, for post-mortem inspection of
    /// quarantining runs (one entry per worker whose pool ever ran).
    /// Pooled queues reset their per-run counters between trials, so
    /// the durable signal here is the retained footprint
    /// (`slab_capacity`); the cumulative counters live in
    /// [`SweepExecStats::pool`](super::SweepExecStats).
    pub queues: Vec<QueueStats>,
}

/// Runs a robustness campaign over `config`'s grid.
///
/// Resolution order per cell: the `manifest` (previous campaign run),
/// then the `store` (any previous sweep, resolved in one batch probe),
/// then simulation. Every freshly decided cell — clean or quarantined —
/// is checkpointed into the manifest as soon as it is known, so killing
/// the process loses at most the in-flight cells. To resume through a
/// [`PackStore`](crate::store::PackStore) alone, pass it as `manifest`
/// only: its decided records already answer everything a trial-store
/// probe could, and passing the same pack as *both* roles would append
/// every decided cell twice (one `store` plus one `record_done`
/// record).
///
/// `sabotage` deterministically injects failures for smoke testing;
/// pass `|_| Sabotage::None` in production.
///
/// With [`RobustnessConfig::batch`] above 1, pending sibling cells are
/// dispatched through one engine pass per batch; results stay
/// bit-identical, but a panic inside a batch quarantines every lane of
/// that batch rather than a single cell.
///
/// # Panics
///
/// Panics if the grid is empty or `trials`/`threads` is zero. Panics
/// *inside cells* (including sabotaged ones) are quarantined, never
/// propagated.
pub fn robustness_campaign<S>(
    config: &RobustnessConfig,
    store: Option<&dyn TrialStore>,
    manifest: Option<&dyn DecidedStore>,
    sabotage: S,
) -> CampaignReport
where
    S: Fn(&Cell) -> Sabotage + Sync,
{
    robustness_campaign_instrumented(config, store, manifest, sabotage, &CampaignTelemetry::off())
}

/// Per-worker state of an instrumented campaign: the worker's pooled
/// context, its span sink, and any panic flight dumps stashed while
/// later batches ran on the same worker (a panicked batch's dump is
/// only matched back to its grid cells after the map completes).
struct CampaignWorker {
    index: usize,
    pool: SimPool,
    sink: Option<SpanSink>,
    panic_dumps: Vec<FlightDump>,
}

/// [`robustness_campaign`] under campaign telemetry: span tracing of
/// the resolve/build/run phases and each dispatched batch, one live
/// progress event per decided cell (resumed / hit / simulated /
/// quarantined), and — when [`FlightOptions`] is set — a crash flight
/// recorder on every worker pool whose dump is written out per failed
/// cell and linked from [`CellFailure::flight`].
///
/// Dump pairing relies on two ordering invariants. Watchdog dumps are
/// frozen by the engine *during* [`SimPool::run_batch`], whose
/// watchdogged lanes scalar-drain sequentially in lane order, so the
/// dumps drained right after a batch line up with that batch's `Err`
/// lanes in order. Panic dumps are frozen by a drop guard while the
/// worker unwinds; each batch marks the flight ring with its first
/// lane's key text on entry, so a panic dump's last `mark` event names
/// the batch it belongs to and is matched after the map ends.
///
/// With the default (disabled) [`CampaignTelemetry`] every observer
/// site is one `None` branch and results are those of the plain
/// driver. The caller owns the telemetry lifecycle: this driver opens
/// the progress stream but never closes it
/// ([`ProgressReporter::finish`] stays with the CLI).
///
/// [`FlightOptions`]: crate::telemetry::FlightOptions
/// [`ProgressReporter::finish`]: harvest_obs::ProgressReporter::finish
///
/// # Panics
///
/// As [`robustness_campaign`].
#[allow(clippy::too_many_lines)]
pub fn robustness_campaign_instrumented<S>(
    config: &RobustnessConfig,
    store: Option<&dyn TrialStore>,
    manifest: Option<&dyn DecidedStore>,
    sabotage: S,
    telemetry: &CampaignTelemetry,
) -> CampaignReport
where
    S: Fn(&Cell) -> Sabotage + Sync,
{
    assert!(config.trials > 0, "need at least one trial");
    assert!(
        !config.intensities.is_empty(),
        "need at least one intensity"
    );
    assert!(!config.policies.is_empty(), "need at least one policy");
    assert!(!config.predictors.is_empty(), "need at least one predictor");
    let mut driver_sink = telemetry.sink(TID_DRIVER);
    let figure_start = driver_sink.as_ref().map(|s| s.start());

    // A store that degraded in an earlier campaign re-probes its
    // directory now: the failure may have been transient (disk full,
    // unmounted share) and a new campaign deserves a fresh attempt.
    if let Some(c) = store {
        c.reprobe();
    }

    let scenario_of = |intensity: f64, predictor: PredictorKind| {
        let mut s = PaperScenario::new(config.utilization, config.capacity)
            .with_predictor(predictor)
            .with_fault_intensity(intensity);
        s.horizon_units = config.horizon_units;
        s
    };

    // The grid, row-major: (row, predictor idx, policy idx, seed).
    let jobs: Vec<(usize, usize, usize, u64)> = (0..config.intensities.len())
        .flat_map(|row| {
            (0..config.predictors.len()).flat_map(move |pi| {
                (0..config.policies.len())
                    .flat_map(move |pj| (0..config.trials as u64).map(move |s| (row, pi, pj, s)))
            })
        })
        .collect();
    let keys: Vec<TrialKey> = jobs
        .iter()
        .map(|&(row, pi, pj, seed)| {
            scenario_of(config.intensities[row], config.predictors[pi])
                .trial_key(config.policies[pj], seed)
        })
        .collect();

    // Resolve: manifest (previous campaign run) first, then the store —
    // the latter as one batch probe over every manifest-unresolved cell.
    let probe_start = driver_sink.as_ref().map(|s| s.start());
    let track_progress = telemetry.progress.is_some();
    let mut resolved: Vec<(usize, CellDecision)> = Vec::new();
    let mut outcomes: Vec<Option<CellOutcome>> = vec![None; jobs.len()];
    let mut resumed = 0u64;
    let mut cached = 0u64;
    if let Some(m) = manifest {
        for (i, key) in keys.iter().enumerate() {
            if let Some(outcome) = m.decided(key) {
                outcomes[i] = Some(outcome);
                resumed += 1;
                if track_progress {
                    resolved.push((i, CellDecision::Resumed));
                }
            }
        }
    }
    if let Some(c) = store {
        let unresolved: Vec<usize> = (0..jobs.len()).filter(|&i| outcomes[i].is_none()).collect();
        let probe_keys: Vec<TrialKey> = unresolved.iter().map(|&i| keys[i].clone()).collect();
        for (&i, hit) in unresolved.iter().zip(c.probe_many(&probe_keys)) {
            if let Some(summary) = hit {
                if let Some(m) = manifest {
                    // Best-effort: a later resume then works without the store.
                    let _ = m.record_done(&keys[i], &summary);
                }
                outcomes[i] = Some(CellOutcome::Done(summary));
                cached += 1;
                if track_progress {
                    resolved.push((i, CellDecision::Hit));
                }
            }
        }
    }
    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| outcomes[i].is_none()).collect();
    if let (Some(sink), Some(t)) = (driver_sink.as_mut(), probe_start) {
        sink.record_with(
            t,
            "resolve",
            CAT_PROBE,
            vec![
                ("cells".into(), jobs.len().to_string()),
                ("resumed".into(), resumed.to_string()),
            ],
        );
    }
    if let Some(progress) = &telemetry.progress {
        progress.start("fault-sweep", jobs.len() as u64, resumed, config.threads);
        for (i, decision) in resolved {
            progress.cell(decision, keys[i].text(), 0);
        }
    }

    // Build: one prefab per seed still needing simulation (the solar
    // realization and task set depend on the seed, never on the fault
    // intensity, predictor, or policy).
    let base = scenario_of(0.0, config.predictors[0]);
    let mut needed: Vec<u64> = pending.iter().map(|&i| jobs[i].3).collect();
    needed.sort_unstable();
    needed.dedup();
    let build_start = driver_sink.as_ref().map(|s| s.start());
    let built: Vec<TrialPrefab> =
        parallel_map(needed.clone(), config.threads, |seed| base.prefab(seed));
    if let (Some(sink), Some(t)) = (driver_sink.as_mut(), build_start) {
        sink.record_with(
            t,
            "build",
            CAT_BUILD,
            vec![("prefabs".into(), needed.len().to_string())],
        );
    }
    let mut prefabs: Vec<Option<TrialPrefab>> = vec![None; config.trials];
    for (seed, prefab) in needed.into_iter().zip(built) {
        prefabs[seed as usize] = Some(prefab);
    }

    // Run: pending cells through quarantining pooled workers, grouped
    // into sibling batches. The grid is row-major then predictor then
    // policy then seed, so consecutive pending cells of one
    // `(row, predictor, policy)` point are sibling seeds of the same
    // scenario; up to `config.batch` of them go through one engine
    // dispatch. Each decided cell checkpoints into the manifest
    // immediately; a panic mid-batch quarantines the whole batch.
    type SiblingGroup = (usize, usize, usize, Vec<(usize, u64)>);
    let mut groups: Vec<SiblingGroup> = Vec::new();
    for &i in &pending {
        let (row, pi, pj, seed) = jobs[i];
        match groups.last_mut() {
            Some((r, a, b, lanes))
                if (*r, *a, *b) == (row, pi, pj) && lanes.len() < config.batch =>
            {
                lanes.push((i, seed));
            }
            _ => groups.push((row, pi, pj, vec![(i, seed)])),
        }
    }
    // Freezes the flight ring while the worker unwinds, so the events
    // leading up to a panic survive into a post-map dump.
    struct PanicCapture(Option<harvest_obs::SharedFlightRecorder>);
    impl Drop for PanicCapture {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Some(f) = &self.0 {
                    f.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .capture("panic", 0);
                }
            }
        }
    }
    let flight_opts = telemetry.flight.as_ref();
    let (computed, mut pools) = parallel_map_quarantined(
        groups.clone(),
        config.threads,
        |w| {
            let mut pool = SimPool::new();
            if let Some(opts) = flight_opts {
                pool.enable_flight(opts.capacity);
            }
            CampaignWorker {
                index: w,
                pool,
                sink: telemetry.sink(w as u32 + 1),
                panic_dumps: Vec::new(),
            }
        },
        |w, (row, pi, pj, lanes)| {
            let intensity = config.intensities[row];
            let predictor = config.predictors[pi];
            let policy = config.policies[pj];
            let scenario = scenario_of(intensity, predictor);
            let cell_start = w.sink.as_ref().map(|s| s.start());
            let _panic_capture = PanicCapture(w.pool.flight().cloned());
            if let Some(f) = w.pool.flight() {
                f.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .mark(scenario.trial_key(policy, lanes[0].1).text());
            }
            let mut watchdogs = Vec::with_capacity(lanes.len());
            for &(_, seed) in &lanes {
                let cell = Cell {
                    intensity,
                    policy,
                    predictor,
                    seed,
                };
                watchdogs.push(match sabotage(&cell) {
                    Sabotage::Panic => panic!(
                        "injected sabotage: panic in cell {}",
                        scenario.trial_key(policy, seed).text()
                    ),
                    Sabotage::Starve => Some(Watchdog::with_max_events(4)),
                    Sabotage::None => config.watchdog,
                });
            }
            let lane_prefabs: Vec<&TrialPrefab> = lanes
                .iter()
                .map(|&(_, seed)| {
                    prefabs[seed as usize]
                        .as_ref()
                        .expect("prefab built for every pending seed")
                })
                .collect();
            let results = w
                .pool
                .run_batch(&scenario, policy, &lane_prefabs, &watchdogs);
            if let (Some(sink), Some(t)) = (w.sink.as_mut(), cell_start) {
                sink.record_with(
                    t,
                    "cell",
                    CAT_SIMULATE,
                    vec![
                        (
                            "key".into(),
                            scenario.trial_key(policy, lanes[0].1).text().to_owned(),
                        ),
                        ("lanes".into(), lanes.len().to_string()),
                    ],
                );
            }
            // Watchdog dumps were frozen during the batch's sequential
            // scalar drain, so they pair with this batch's `Err` lanes
            // in order. A stale panic dump from an earlier batch on
            // this worker is stashed for post-map matching instead.
            let mut watchdog_dumps = Vec::new();
            if flight_opts.is_some() {
                for dump in w.pool.take_flight_dumps() {
                    if dump.reason == "panic" {
                        w.panic_dumps.push(dump);
                    } else {
                        watchdog_dumps.push(dump);
                    }
                }
            }
            let mut watchdog_dumps = watchdog_dumps.into_iter();
            let worker = w.index;
            let lane_outcomes: Vec<(usize, Result<TrialSummary, CellFailure>)> = lanes
                .iter()
                .zip(results)
                .map(|(&(i, seed), result)| {
                    let outcome = match result {
                        Ok(res) => {
                            let summary = TrialSummary::of(&res);
                            let key = scenario.trial_key(policy, seed);
                            if let Some(c) = store {
                                c.store(&key, &summary);
                            }
                            if let Some(m) = manifest {
                                let _ = m.record_done(&key, &summary);
                            }
                            telemetry.cell(CellDecision::Simulated, key.text(), worker);
                            Ok(summary)
                        }
                        Err(e) => {
                            let key = scenario.trial_key(policy, seed);
                            let flight = watchdog_dumps.next().and_then(|dump| {
                                flight_opts.and_then(|opts| {
                                    write_flight_dump(&opts.dir, key.text(), dump)
                                        .ok()
                                        .map(|p| p.display().to_string())
                                })
                            });
                            Err(CellFailure {
                                message: e.to_string(),
                                panicked: false,
                                worker,
                                flight,
                            })
                        }
                    };
                    (i, outcome)
                })
                .collect();
            Ok::<_, harvest_core::result::SimError>(lane_outcomes)
        },
    );

    let mut exec = SweepExecStats {
        simulated: pending.len() as u64,
        cached,
        ..SweepExecStats::default()
    };
    let mut queues = Vec::new();
    for w in &pools {
        exec.merge_pool(w.pool.stats());
        if let Some(qs) = w.pool.queue_stats() {
            queues.push(qs);
        }
    }
    if let Some(progress) = &telemetry.progress {
        progress.note_lane_high_water(exec.pool.batch_lane_high_water);
    }
    // Batch-boundary durability barrier: every record the workers
    // appended is synced before the campaign reports its figures.
    if let Some(c) = store {
        c.barrier();
    }
    if let Some(m) = manifest {
        m.barrier();
    }
    // Panic dumps: stashed by later batches on the same worker, or
    // still pending on the recorder when the panicked batch was the
    // worker's last. Each batch marked the ring with its first lane's
    // key text on entry, so a dump's last mark names its batch.
    let mut panic_dump_by_key: HashMap<String, FlightDump> = HashMap::new();
    if flight_opts.is_some() {
        for w in &mut pools {
            let mut dumps = std::mem::take(&mut w.panic_dumps);
            dumps.extend(w.pool.take_flight_dumps());
            for dump in dumps {
                let mark = dump
                    .events
                    .iter()
                    .rev()
                    .find(|e| e.kind == "mark")
                    .map(|m| m.detail.clone());
                if let Some(mark) = mark {
                    panic_dump_by_key.insert(mark, dump);
                }
            }
        }
    }

    let mut quarantined = Vec::new();
    let quarantine = |i: usize, failure: CellFailure, quarantined: &mut Vec<QuarantineRecord>| {
        let job = jobs[i];
        let key = &keys[i];
        telemetry.cell(CellDecision::Quarantined, key.text(), failure.worker);
        if let Some(m) = manifest {
            let _ = m.record_quarantined(key, &failure);
        }
        quarantined.push(QuarantineRecord {
            key: key.text().to_owned(),
            policy: config.policies[job.2],
            seed: job.3,
            intensity: config.intensities[job.0],
            failure: failure.clone(),
        });
        CellOutcome::Quarantined(failure)
    };
    for ((_, _, _, lanes), result) in groups.into_iter().zip(computed) {
        match result {
            Ok(lane_outcomes) => {
                for (i, outcome) in lane_outcomes {
                    outcomes[i] = Some(match outcome {
                        Ok(summary) => CellOutcome::Done(summary),
                        Err(failure) => quarantine(i, failure, &mut quarantined),
                    });
                }
            }
            // The whole batch failed before any lane resolved (a panic
            // mid-dispatch): every lane of the batch is quarantined,
            // each with its own copy of the batch's flight dump.
            Err(failure) => {
                let dump = panic_dump_by_key.remove(keys[lanes[0].0].text());
                for (i, _) in lanes {
                    let mut failure = failure.clone();
                    if let (Some(dump), Some(opts)) = (&dump, flight_opts) {
                        failure.flight = write_flight_dump(&opts.dir, keys[i].text(), dump.clone())
                            .ok()
                            .map(|p| p.display().to_string());
                    }
                    outcomes[i] = Some(quarantine(i, failure, &mut quarantined));
                }
            }
        }
    }

    // Aggregate: means over decided cells only.
    let pairs = config.predictors.len() * config.policies.len();
    let mut sums = vec![vec![0.0f64; pairs]; config.intensities.len()];
    let mut counts = vec![vec![0u64; pairs]; config.intensities.len()];
    for ((row, pi, pj, _), outcome) in jobs.into_iter().zip(outcomes) {
        let idx = pi * config.policies.len() + pj;
        if let Some(CellOutcome::Done(summary)) = outcome {
            sums[row][idx] += summary.miss_rate();
            counts[row][idx] += 1;
        }
    }
    let rows: Vec<RobustnessRow> = config
        .intensities
        .iter()
        .zip(sums.into_iter().zip(counts))
        .map(|(&intensity, (sum, decided))| RobustnessRow {
            intensity,
            miss_rates: sum
                .iter()
                .zip(&decided)
                .map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
                .collect(),
            decided,
        })
        .collect();

    // Quarantine checkpoints appended after the mid-campaign barrier
    // sync here; the recovery accounting they generated rides into the
    // final heartbeat.
    if let Some(m) = manifest {
        m.barrier();
    }
    if let Some(progress) = &telemetry.progress {
        let mut health = harvest_obs::IoHealth::default();
        if let Some(c) = store {
            health = health.merge(c.io_health());
        }
        if let Some(m) = manifest {
            health = health.merge(m.io_health());
        }
        progress.note_store_health(health);
    }

    if let (Some(sink), Some(t)) = (driver_sink.as_mut(), figure_start) {
        sink.record_with(
            t,
            "robustness-campaign",
            CAT_FIGURE,
            vec![("quarantined".into(), quarantined.len().to_string())],
        );
    }
    CampaignReport {
        figure: RobustnessFigure {
            utilization: config.utilization,
            capacity: config.capacity,
            policies: config.policies.clone(),
            predictors: config.predictors.clone(),
            rows,
            trials: config.trials,
        },
        quarantined,
        exec,
        resumed,
        queues,
    }
}

/// The robustness figure on the default grid (no manifest, trial store
/// from the environment, no sabotage).
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero.
pub fn robustness_figure(trials: usize, threads: usize) -> RobustnessFigure {
    let config = RobustnessConfig {
        trials,
        threads,
        ..RobustnessConfig::default()
    };
    let store = store_from_env();
    robustness_campaign(&config, store.as_deref(), None, |_| Sabotage::None).figure
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RobustnessConfig {
        RobustnessConfig {
            horizon_units: 2_000,
            intensities: vec![0.0, 1.0],
            policies: vec![PolicyKind::Lsa, PolicyKind::EaDvfs],
            predictors: vec![PredictorKind::Oracle],
            trials: 2,
            threads: 2,
            ..RobustnessConfig::default()
        }
    }

    #[test]
    fn faults_move_the_miss_rate() {
        let report = robustness_campaign(&small_config(), None, None, |_| Sabotage::None);
        let fig = &report.figure;
        assert_eq!(fig.rows.len(), 2);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.exec.simulated, 2 * 2 * 2);
        for row in &fig.rows {
            for (&rate, &n) in row.miss_rates.iter().zip(&row.decided) {
                assert!((0.0..=1.0).contains(&rate));
                assert_eq!(n, 2, "every cell decided");
            }
        }
        let clean: f64 = fig.rows[0].miss_rates.iter().sum();
        let faulted: f64 = fig.rows[1].miss_rates.iter().sum();
        assert!(
            faulted >= clean,
            "full-intensity faults cannot reduce misses (clean {clean:.3}, faulted {faulted:.3})"
        );
        assert!(
            faulted > 0.0,
            "blackouts and lockouts at intensity 1 must cause misses"
        );
        // The figure digest is a pure function of the data.
        assert_eq!(fig.digest(), report.figure.digest());
    }

    /// A batched campaign reproduces the scalar figure digest exactly.
    #[test]
    fn batched_campaign_matches_scalar() {
        let scalar = robustness_campaign(&small_config(), None, None, |_| Sabotage::None);
        let config = RobustnessConfig {
            batch: 4,
            ..small_config()
        };
        let batched = robustness_campaign(&config, None, None, |_| Sabotage::None);
        assert_eq!(batched.figure.digest(), scalar.figure.digest());
        assert!(batched.quarantined.is_empty());
        assert_eq!(batched.exec.simulated, scalar.exec.simulated);
        // The default watchdog forces every lane down the scalar drain,
        // so batching changes dispatch granularity only: no lane may
        // take the fused loop.
        assert_eq!(batched.exec.pool.batched_runs, 0);
    }

    #[test]
    fn sabotaged_cells_are_quarantined_not_fatal() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = robustness_campaign(&small_config(), None, None, |cell| {
            if (cell.policy, cell.seed, cell.intensity) == (PolicyKind::Lsa, 0, 0.0) {
                Sabotage::Panic
            } else if (cell.policy, cell.seed, cell.intensity) == (PolicyKind::EaDvfs, 1, 1.0) {
                Sabotage::Starve
            } else {
                Sabotage::None
            }
        });
        std::panic::set_hook(hook);
        assert_eq!(report.quarantined.len(), 2, "exactly the sabotaged cells");
        let panicked = &report.quarantined[0];
        assert_eq!(panicked.policy, PolicyKind::Lsa);
        assert_eq!(panicked.seed, 0);
        assert!(panicked.failure.panicked);
        assert!(panicked.key.contains("|lsa|0"), "{}", panicked.key);
        let starved = &report.quarantined[1];
        assert_eq!(starved.policy, PolicyKind::EaDvfs);
        assert_eq!(starved.seed, 1);
        assert!(!starved.failure.panicked);
        assert!(
            starved.failure.message.contains("watchdog"),
            "{}",
            starved.failure.message
        );
        // Quarantined cells are excluded from the means, the rest decide.
        let fig = &report.figure;
        assert_eq!(fig.rows[0].decided[0], 1, "LSA row 0 lost one trial");
        assert_eq!(fig.rows[1].decided[1], 1, "EA-DVFS row 1 lost one trial");
        assert_eq!(fig.rows[0].decided[1], 2);
        // Queue stats from the surviving pools are reported.
        assert!(!report.queues.is_empty());
        assert!(report.exec.pool.runs > 0);
    }

    #[test]
    fn manifest_resume_skips_every_decided_cell() {
        let dir = std::env::temp_dir().join(format!(
            "harvest-robustness-manifest-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.manifest.jsonl");
        let config = small_config();

        let manifest = crate::manifest::SweepManifest::open(&path).unwrap();
        let first = robustness_campaign(&config, None, Some(&manifest), |_| Sabotage::None);
        assert_eq!(first.resumed, 0);
        assert_eq!(first.exec.simulated, 8);
        drop(manifest);

        let manifest = crate::manifest::SweepManifest::open(&path).unwrap();
        assert_eq!(manifest.resumed(), 8);
        let second = robustness_campaign(&config, None, Some(&manifest), |_| Sabotage::None);
        assert_eq!(second.exec.simulated, 0, "nothing re-simulates");
        assert_eq!(second.resumed, 8);
        assert_eq!(
            second.figure.digest(),
            first.figure.digest(),
            "resumed figure is bit-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
