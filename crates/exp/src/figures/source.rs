//! Figure 5: one realization of the eq. 13 solar source.

use harvest_energy::sources::SolarModel;
use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use harvest_energy::source::sample_profile;

/// Data behind Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceFigure {
    /// Sample instants (whole time units).
    pub times: Vec<f64>,
    /// Sampled power `PS(t)`.
    pub power: Vec<f64>,
    /// Mean power of the realization (the `P̄s` the workload generator
    /// uses).
    pub mean: f64,
    /// Peak power of the realization.
    pub max: f64,
}

/// Samples the paper's solar generator over `[0, horizon_units)` with a
/// 1-unit step (the paper's Fig. 5 shows 10 000 units).
///
/// # Panics
///
/// Panics if `horizon_units` is not positive.
pub fn source_figure(seed: u64, horizon_units: i64) -> SourceFigure {
    assert!(horizon_units > 0, "horizon must be positive");
    let profile = sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(horizon_units),
        SimDuration::from_whole_units(1),
        seed,
    )
    .expect("figure grid is valid");
    let power: Vec<f64> = profile.values().to_vec();
    let times: Vec<f64> = (0..horizon_units).map(|t| t as f64).collect();
    SourceFigure {
        mean: profile.domain_mean(),
        max: profile.domain_max(),
        times,
        power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_matches_paper_envelope() {
        let f = source_figure(1, 10_000);
        assert_eq!(f.times.len(), 10_000);
        assert_eq!(f.power.len(), 10_000);
        // Fig. 5 shows peaks near 20 and non-negative output.
        assert!(f.max > 10.0 && f.max < 60.0, "max {}", f.max);
        assert!(f.power.iter().all(|&p| p >= 0.0));
        // Mean ≈ 2 (the analytic value for eq. 13 with clamping).
        assert!((f.mean - 2.0).abs() < 0.3, "mean {}", f.mean);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(source_figure(4, 100), source_figure(4, 100));
        assert_ne!(source_figure(4, 100), source_figure(5, 100));
    }
}
