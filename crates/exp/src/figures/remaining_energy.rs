//! Figures 6–7: normalized remaining energy over time.
//!
//! The paper's procedure (§5.2): run each task set against every
//! capacity in [`super::PAPER_CAPACITIES`]; normalize each run's stored
//! energy by its capacity; average all normalized curves with equal
//! weight.

use std::sync::OnceLock;

use harvest_sim::stats::SampledSeries;
use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use super::SweepExecStats;
use crate::cache::{TrialKey, TrialSummary};
use crate::parallel::parallel_map_with;
use crate::scenario::{PaperScenario, PolicyKind, SimPool, TrialPrefab};
use crate::store::{store_from_env, TrialStore};

/// Data behind Figures 6 (U = 0.4) and 7 (U = 0.8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemainingEnergyFigure {
    /// Workload utilization.
    pub utilization: f64,
    /// Sample instants (whole time units).
    pub times: Vec<f64>,
    /// Mean normalized remaining energy per policy, aligned with
    /// `times`.
    pub series: Vec<(PolicyKind, Vec<f64>)>,
    /// Task sets per capacity point.
    pub trials: usize,
    /// Capacities averaged over.
    pub capacities: Vec<f64>,
    /// Time-averaged normalized level per capacity per policy,
    /// `per_capacity[c][p]` aligned with `capacities` × `series` — the
    /// gap between policies concentrates at the small capacities.
    pub per_capacity: Vec<Vec<f64>>,
}

impl RemainingEnergyFigure {
    /// The curve for one policy, if present.
    pub fn curve(&self, policy: PolicyKind) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(p, _)| *p == policy)
            .map(|(_, v)| v.as_slice())
    }

    /// Time-averaged normalized remaining energy for one policy.
    pub fn mean_level(&self, policy: PolicyKind) -> Option<f64> {
        self.curve(policy)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
    }
}

/// Reproduces Fig. 6/7 for the given utilization.
///
/// `trials` task sets are run per capacity per policy;
/// `sample_interval` sets the curve resolution (the paper plots ~100
/// points over 10 000 units).
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero.
pub fn remaining_energy_figure(
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
    sample_interval_units: i64,
) -> RemainingEnergyFigure {
    let store = store_from_env();
    remaining_energy_figure_cached(
        store.as_deref(),
        utilization,
        policies,
        trials,
        threads,
        sample_interval_units,
    )
    .0
}

/// [`remaining_energy_figure`] with an explicit trial store and
/// execution accounting.
///
/// Stored summaries carry the raw sampled levels as IEEE-754 bit
/// patterns, so a curve rebuilt from the store is bit-identical to one
/// rebuilt from fresh simulations. Each policy's whole grid resolves
/// through one batch probe; prefabs materialize lazily — a fully warm
/// re-run builds none.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero.
pub fn remaining_energy_figure_cached(
    store: Option<&dyn TrialStore>,
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
    sample_interval_units: i64,
) -> (RemainingEnergyFigure, SweepExecStats) {
    assert!(trials > 0, "need at least one trial");
    let capacities = super::PAPER_CAPACITIES.to_vec();
    let horizon_units = 10_000;
    let points = (horizon_units / sample_interval_units) as usize;
    let grid_start = SimTime::ZERO;
    let grid_step = SimDuration::from_whole_units(sample_interval_units);

    // Each seed's solar realization and task set are shared across the
    // whole capacities × policies grid, built lazily on the first cell
    // the store cannot answer.
    let prefabs: Vec<OnceLock<TrialPrefab>> = (0..trials).map(|_| OnceLock::new()).collect();
    let base = PaperScenario::new(utilization, capacities[0]);
    let mut stats = SweepExecStats::default();
    let mut series = Vec::new();
    let mut per_capacity = vec![vec![0.0; policies.len()]; capacities.len()];
    for (pi, &policy) in policies.iter().enumerate() {
        // One (capacity, seed) job per run; all runs independent.
        let jobs: Vec<(usize, f64, u64)> = capacities
            .iter()
            .enumerate()
            .flat_map(|(ci, &c)| (0..trials as u64).map(move |s| (ci, c, s)))
            .collect();
        // Probe the policy's whole grid in one batch, then simulate
        // only the cells the store could not answer.
        let mut summaries: Vec<Option<TrialSummary>> = match store {
            Some(c) => {
                let keys: Vec<TrialKey> = jobs
                    .iter()
                    .map(|&(_, capacity, seed)| {
                        PaperScenario::new(utilization, capacity)
                            .with_sampling(sample_interval_units)
                            .trial_key(policy, seed)
                    })
                    .collect();
                c.probe_many(&keys)
            }
            None => vec![None; jobs.len()],
        };
        let pending: Vec<(usize, f64, u64)> = jobs
            .iter()
            .enumerate()
            .filter(|&(ji, _)| summaries[ji].is_none())
            .map(|(ji, &(_, capacity, seed))| (ji, capacity, seed))
            .collect();
        stats.cached += (jobs.len() - pending.len()) as u64;
        stats.simulated += pending.len() as u64;
        let (fresh, pools) = parallel_map_with(
            pending,
            threads,
            |_| SimPool::new(),
            |pool, (ji, capacity, seed)| {
                let scenario =
                    PaperScenario::new(utilization, capacity).with_sampling(sample_interval_units);
                let prefab = prefabs[seed as usize].get_or_init(|| base.prefab(seed));
                let summary = TrialSummary::of(&scenario.run_prefab_in(pool, policy, prefab));
                if let Some(c) = store {
                    c.store(&scenario.trial_key(policy, seed), &summary);
                }
                (ji, summary)
            },
        );
        for pool in &pools {
            stats.merge_pool(pool.stats());
        }
        for (ji, summary) in fresh {
            summaries[ji] = Some(summary);
        }
        let mut acc = SampledSeries::new(grid_start, grid_step, points);
        for (&(ci, capacity, _), summary) in jobs.iter().zip(&summaries) {
            let samples = summary
                .as_ref()
                .expect("every cell resolved")
                .normalized_sample_values(capacity);
            acc.accumulate(&samples);
            let run_mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
            per_capacity[ci][pi] += run_mean / trials as f64;
        }
        series.push((policy, acc.mean_values()));
    }
    let figure = RemainingEnergyFigure {
        utilization,
        times: (0..points)
            .map(|k| (k as i64 * sample_interval_units) as f64)
            .collect(),
        series,
        trials,
        capacities,
        per_capacity,
    };
    (figure, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but real instance of the Fig. 6 headline: at U = 0.4 the
    /// EA-DVFS system stores significantly more energy than LSA.
    #[test]
    fn ea_dvfs_stores_more_at_low_utilization() {
        let fig = remaining_energy_figure(0.4, &[PolicyKind::Lsa, PolicyKind::EaDvfs], 3, 2, 500);
        let lsa = fig.mean_level(PolicyKind::Lsa).unwrap();
        let ea = fig.mean_level(PolicyKind::EaDvfs).unwrap();
        assert!(
            ea > lsa,
            "EA-DVFS should retain more energy (ea {ea:.3} vs lsa {lsa:.3})"
        );
        assert_eq!(fig.times.len(), 20);
        assert!(fig.curve(PolicyKind::Edf).is_none());
        // Per-capacity breakdown is filled and bounded.
        assert_eq!(fig.per_capacity.len(), fig.capacities.len());
        for row in &fig.per_capacity {
            assert_eq!(row.len(), 2);
            for &v in row {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "mean level {v}");
            }
        }
    }

    #[test]
    fn curves_start_full() {
        let fig = remaining_energy_figure(0.4, &[PolicyKind::EaDvfs], 2, 2, 1000);
        let c = fig.curve(PolicyKind::EaDvfs).unwrap();
        // Storage starts full in every run → the first sample is 1.0.
        assert!((c[0] - 1.0).abs() < 1e-9, "first sample {}", c[0]);
        assert!(c.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }
}
