//! Table 1: minimum storage capacity for a zero deadline-miss rate.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use super::SweepExecStats;
use crate::cache::{TrialKey, TrialSummary};
use crate::parallel::parallel_map_with;
use crate::scenario::{PaperScenario, PolicyKind, SimPool, TrialPrefab};
use crate::store::{store_from_env, TrialStore};

/// One utilization row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinCapacityRow {
    /// Workload utilization.
    pub utilization: f64,
    /// `C_min` for LSA.
    pub cmin_lsa: f64,
    /// `C_min` for EA-DVFS.
    pub cmin_ea_dvfs: f64,
    /// The paper's reported quantity `C_min,LSA / C_min,EA-DVFS`.
    pub ratio: f64,
}

/// Data behind Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinCapacityTable {
    /// One row per swept utilization.
    pub rows: Vec<MinCapacityRow>,
    /// Task sets every capacity must satisfy miss-free.
    pub trials: usize,
}

/// Binary-searches the smallest capacity at which **every** seeded trial
/// of the scenario runs without a deadline miss.
///
/// Returns `f64::INFINITY` if even `max_capacity` still misses.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero, or tolerances are
/// non-positive.
pub fn min_zero_miss_capacity(
    policy: PolicyKind,
    utilization: f64,
    trials: usize,
    threads: usize,
    max_capacity: f64,
    rel_tol: f64,
) -> f64 {
    let store = store_from_env();
    min_zero_miss_capacity_cached(
        store.as_deref(),
        policy,
        utilization,
        trials,
        threads,
        max_capacity,
        rel_tol,
    )
    .0
}

/// [`min_zero_miss_capacity`] with an explicit trial store and execution
/// accounting.
///
/// The search replays the same seeds at many capacities, and — because
/// both the exponential phase and the bisection phase are deterministic
/// functions of earlier outcomes — a re-run probes exactly the same
/// capacity sequence. Each probed capacity resolves its whole seed grid
/// through one batch probe ([`TrialStore::probe_many`]); with a warm
/// store no prefab is built (they materialize lazily, on the first seed
/// that actually simulates) and no trial runs.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero, or tolerances are
/// non-positive.
pub fn min_zero_miss_capacity_cached(
    store: Option<&dyn TrialStore>,
    policy: PolicyKind,
    utilization: f64,
    trials: usize,
    threads: usize,
    max_capacity: f64,
    rel_tol: f64,
) -> (f64, SweepExecStats) {
    assert!(trials > 0, "need at least one trial");
    assert!(rel_tol > 0.0, "tolerance must be positive");
    // The prefabs are capacity-independent and shared across every
    // probe, but built lazily so store-answered seeds never pay for
    // them. `OnceLock` makes the lazy init safe from worker threads.
    let base = PaperScenario::new(utilization, 100.0);
    let prefabs: Vec<OnceLock<TrialPrefab>> = (0..trials).map(|_| OnceLock::new()).collect();
    let mut stats = SweepExecStats::default();
    let mut miss_free = |capacity: f64| -> bool {
        let scenario = PaperScenario::new(utilization, capacity);
        // Probe the whole seed grid for this capacity in one pass.
        let probed: Vec<Option<TrialSummary>> = match store {
            Some(c) => {
                let keys: Vec<TrialKey> = (0..trials as u64)
                    .map(|seed| scenario.trial_key(policy, seed))
                    .collect();
                c.probe_many(&keys)
            }
            None => vec![None; trials],
        };
        let pending: Vec<u64> = (0..trials as u64)
            .filter(|&seed| probed[seed as usize].is_none())
            .collect();
        stats.cached += (trials - pending.len()) as u64;
        stats.simulated += pending.len() as u64;
        let (fresh, pools) = parallel_map_with(
            pending,
            threads,
            |_| SimPool::new(),
            |pool, seed| {
                let prefab = prefabs[seed as usize].get_or_init(|| base.prefab(seed));
                let summary = TrialSummary::of(&scenario.run_prefab_in(pool, policy, prefab));
                if let Some(c) = store {
                    c.store(&scenario.trial_key(policy, seed), &summary);
                }
                summary.is_miss_free()
            },
        );
        for pool in &pools {
            stats.merge_pool(pool.stats());
        }
        let mut all_free = probed.iter().flatten().all(TrialSummary::is_miss_free);
        for free in fresh {
            all_free &= free;
        }
        all_free
    };
    // Exponential search for an upper bound.
    let mut lo = 0.0_f64;
    let mut hi = 100.0_f64;
    while !miss_free(hi) {
        lo = hi;
        hi *= 2.0;
        if hi > max_capacity {
            return (f64::INFINITY, stats);
        }
    }
    // Bisection down to the relative tolerance.
    while hi - lo > rel_tol * hi {
        let mid = 0.5 * (lo + hi);
        if miss_free(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (hi, stats)
}

/// Reproduces Table 1: `C_min,LSA / C_min,EA-DVFS` for each utilization.
///
/// # Panics
///
/// Panics if `utilizations` is empty or `trials`/`threads` is zero.
pub fn min_capacity_table(utilizations: &[f64], trials: usize, threads: usize) -> MinCapacityTable {
    assert!(!utilizations.is_empty(), "need at least one utilization");
    let rows = utilizations
        .iter()
        .map(|&u| {
            let cmin_lsa = min_zero_miss_capacity(PolicyKind::Lsa, u, trials, threads, 1e7, 0.005);
            let cmin_ea =
                min_zero_miss_capacity(PolicyKind::EaDvfs, u, trials, threads, 1e7, 0.005);
            MinCapacityRow {
                utilization: u,
                cmin_lsa,
                cmin_ea_dvfs: cmin_ea,
                ratio: cmin_lsa / cmin_ea,
            }
        })
        .collect();
    MinCapacityTable { rows, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_monotone_consistent() {
        // With one seed the search must return a capacity at which the
        // trial is indeed miss-free, and slightly below it must miss.
        let c = min_zero_miss_capacity(PolicyKind::Lsa, 0.4, 1, 2, 1e7, 0.01);
        assert!(c.is_finite() && c > 0.0, "cmin {c}");
        let at = PaperScenario::new(0.4, c).run(PolicyKind::Lsa, 0);
        assert!(at.is_miss_free(), "cmin must be miss-free");
    }

    /// Shrunk Table 1 headline: at low utilization EA-DVFS needs a
    /// markedly smaller store than LSA.
    #[test]
    fn ea_dvfs_needs_less_storage_at_low_utilization() {
        let lsa = min_zero_miss_capacity(PolicyKind::Lsa, 0.2, 2, 2, 1e7, 0.01);
        let ea = min_zero_miss_capacity(PolicyKind::EaDvfs, 0.2, 2, 2, 1e7, 0.01);
        assert!(
            lsa > ea * 1.1,
            "LSA should need notably more storage (lsa {lsa:.1} vs ea {ea:.1})"
        );
    }
}
