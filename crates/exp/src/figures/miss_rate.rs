//! Figures 8–9: deadline miss rate vs. normalized storage capacity.

use serde::{Deserialize, Serialize};

use harvest_core::SimResult;
use harvest_obs::progress::CellDecision;
use harvest_obs::span::{CAT_BUILD, CAT_FIGURE, CAT_PROBE, CAT_SIMULATE, CAT_STORE, TID_DRIVER};

use std::collections::HashMap;

use super::{GroupingMode, SweepExecStats};
use crate::cache::{TrialKey, TrialSummary};
use crate::parallel::{parallel_map, parallel_map_with};
use crate::scenario::{PaperScenario, PolicyKind, SimPool, TrialPrefab};
use crate::store::{store_from_env, TrialStore};
use crate::telemetry::CampaignTelemetry;

/// One capacity point of a miss-rate sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRateRow {
    /// Absolute capacity.
    pub capacity: f64,
    /// Capacity normalized by the sweep maximum (the paper's x axis).
    pub normalized_capacity: f64,
    /// Mean miss rate per policy, in `policies` order.
    pub miss_rates: Vec<f64>,
}

/// Data behind Figures 8 (U = 0.4) and 9 (U = 0.8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRateFigure {
    /// Workload utilization.
    pub utilization: f64,
    /// Policies, in row order.
    pub policies: Vec<PolicyKind>,
    /// One row per swept capacity, ascending.
    pub rows: Vec<MissRateRow>,
    /// Task sets per capacity point.
    pub trials: usize,
}

impl MissRateFigure {
    /// Mean miss rate of `policy` across all capacities.
    pub fn mean_miss_rate(&self, policy: PolicyKind) -> Option<f64> {
        let idx = self.policies.iter().position(|&p| p == policy)?;
        let sum: f64 = self.rows.iter().map(|r| r.miss_rates[idx]).sum();
        Some(sum / self.rows.len() as f64)
    }

    /// The miss-rate curve of `policy` (aligned with `rows`).
    pub fn curve(&self, policy: PolicyKind) -> Option<Vec<f64>> {
        let idx = self.policies.iter().position(|&p| p == policy)?;
        Some(self.rows.iter().map(|r| r.miss_rates[idx]).collect())
    }
}

/// The capacity sweep used for Figs. 8–9 (denser at the small end where
/// the curves move fastest; maximum matches the paper's 5 000).
pub(crate) fn sweep_capacities() -> Vec<f64> {
    vec![
        50.0, 100.0, 200.0, 300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0, 3000.0, 4000.0, 5000.0,
    ]
}

/// Reproduces Fig. 8/9 for the given utilization.
///
/// Store-gated by the `HARVEST_SWEEP_STORE` / `HARVEST_SWEEP_CACHE`
/// environment variables (see [`crate::store`]); use
/// [`miss_rate_figure_cached`] to pass a store explicitly.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero.
pub fn miss_rate_figure(
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
) -> MissRateFigure {
    let store = store_from_env();
    miss_rate_figure_cached(store.as_deref(), utilization, policies, trials, threads).0
}

/// [`miss_rate_figure`] with an explicit trial store and execution
/// accounting.
///
/// Runs in three phases: **probe** every grid cell against the store in
/// one batch (no prefab is built for a cell the store answers, so a
/// fully warm re-run does no simulation work at all), **build** trial
/// prefabs only for the seeds that still need simulating, then **run**
/// the pending cells through per-worker pooled contexts and write their
/// summaries back to the store.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero.
pub fn miss_rate_figure_cached(
    store: Option<&dyn TrialStore>,
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
) -> (MissRateFigure, SweepExecStats) {
    miss_rate_figure_cached_batched(store, utilization, policies, trials, threads, 1)
}

/// [`miss_rate_figure_cached`] with an explicit batch width: pending
/// cells that share a `(capacity, policy)` grid point are sibling trials
/// of the same scenario, so up to `batch` of them are simulated per pass
/// through the structure-of-arrays engine
/// ([`harvest_core::simulate_batch_in`]). Results and store contents are
/// bit-identical to `batch == 1`; only throughput changes.
///
/// # Panics
///
/// Panics if `trials`, `threads`, or `batch` is zero.
pub fn miss_rate_figure_cached_batched(
    store: Option<&dyn TrialStore>,
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
    batch: usize,
) -> (MissRateFigure, SweepExecStats) {
    miss_rate_figure_instrumented(
        store,
        utilization,
        policies,
        trials,
        threads,
        batch,
        &CampaignTelemetry::off(),
    )
}

/// [`miss_rate_figure_cached_batched`] under campaign telemetry: span
/// tracing of the probe/build/run phases and each simulated cell, and
/// live progress events per decided cell. With the default (disabled)
/// [`CampaignTelemetry`] every observer site is one `None` branch, so
/// results — and the warm-path cost the sweep bench pins — are those of
/// the plain driver. The caller owns the telemetry lifecycle: this
/// driver opens the progress stream ([`ProgressReporter::start`]) but
/// never closes it ([`ProgressReporter::finish`] stays with the CLI).
///
/// [`ProgressReporter::start`]: harvest_obs::ProgressReporter::start
/// [`ProgressReporter::finish`]: harvest_obs::ProgressReporter::finish
///
/// # Panics
///
/// Panics if `trials`, `threads`, or `batch` is zero.
pub fn miss_rate_figure_instrumented(
    store: Option<&dyn TrialStore>,
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
    batch: usize,
    telemetry: &CampaignTelemetry,
) -> (MissRateFigure, SweepExecStats) {
    miss_rate_figure_grouped(
        store,
        utilization,
        policies,
        trials,
        threads,
        batch,
        GroupingMode::Seed,
        telemetry,
    )
}

/// One unit of pending work for a sweep worker: either sibling seeds of
/// one `(capacity, policy)` grid point, or policy arms of one
/// `(capacity, seed)` trial run in lockstep.
#[derive(Clone)]
enum RunGroup {
    Seeds {
        capacity: f64,
        policy: PolicyKind,
        /// `(job index, seed)` per lane.
        lanes: Vec<(usize, u64)>,
    },
    Arms {
        capacity: f64,
        seed: u64,
        /// `(job index, policy)` per lane.
        arms: Vec<(usize, PolicyKind)>,
    },
}

/// [`miss_rate_figure_instrumented`] with an explicit batch
/// [`GroupingMode`]: the adaptive batcher packs pending cells into SoA
/// lanes along the seed axis, the policy axis, or (`Auto`) whichever
/// fits the sweep shape, and splits results back into the same
/// per-`(scenario, policy, seed)` store cells either way.
///
/// # Panics
///
/// Panics if `trials`, `threads`, or `batch` is zero.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn miss_rate_figure_grouped(
    store: Option<&dyn TrialStore>,
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
    batch: usize,
    grouping: GroupingMode,
    telemetry: &CampaignTelemetry,
) -> (MissRateFigure, SweepExecStats) {
    assert!(trials > 0, "need at least one trial");
    assert!(batch > 0, "batch width must be at least 1");
    let mut driver_sink = telemetry.sink(TID_DRIVER);
    let figure_start = driver_sink.as_ref().map(|s| s.start());
    let capacities = sweep_capacities();
    let max_capacity = capacities.last().copied().expect("non-empty sweep");
    let jobs: Vec<(usize, f64, PolicyKind, u64)> = capacities
        .iter()
        .enumerate()
        .flat_map(|(ci, &c)| {
            policies
                .iter()
                .flat_map(move |&p| (0..trials as u64).map(move |s| (ci, c, p, s)))
        })
        .collect();

    // Probe: resolve every cell the store already holds, in one batch
    // (a pack store answers the whole grid under a single map lock with
    // zero per-cell syscalls).
    let probe_start = driver_sink.as_ref().map(|s| s.start());
    let keys: Option<Vec<TrialKey>> = store.map(|_| {
        jobs.iter()
            .map(|&(_, capacity, policy, seed)| {
                PaperScenario::new(utilization, capacity).trial_key(policy, seed)
            })
            .collect()
    });
    let mut summaries: Vec<Option<TrialSummary>> = match (store, &keys) {
        (Some(c), Some(keys)) => c.probe_many(keys),
        _ => vec![None; jobs.len()],
    };
    if let (Some(sink), Some(t)) = (driver_sink.as_mut(), probe_start) {
        sink.record_with(
            t,
            "probe",
            CAT_PROBE,
            vec![("cells".into(), jobs.len().to_string())],
        );
    }
    let pending: Vec<usize> = (0..jobs.len())
        .filter(|&i| summaries[i].is_none())
        .collect();
    let mut stats = SweepExecStats {
        simulated: pending.len() as u64,
        cached: (jobs.len() - pending.len()) as u64,
        ..SweepExecStats::default()
    };
    if let Some(progress) = &telemetry.progress {
        progress.start(
            &format!("sweep-u{utilization}"),
            jobs.len() as u64,
            0,
            threads,
        );
        if let Some(keys) = &keys {
            for (i, key) in keys.iter().enumerate() {
                if summaries[i].is_some() {
                    progress.cell(CellDecision::Hit, key.text(), 0);
                }
            }
        }
    }

    // Build: a trial's solar realization and task set depend on the
    // seed but not the capacity or policy, so each needed prefab is
    // built once and shared across the whole capacities × policies
    // grid — and only for seeds with at least one uncached cell.
    let mut needed: Vec<u64> = pending.iter().map(|&i| jobs[i].3).collect();
    needed.sort_unstable();
    needed.dedup();
    let build_start = driver_sink.as_ref().map(|s| s.start());
    let built: Vec<TrialPrefab> = parallel_map(needed.clone(), threads, |seed| {
        PaperScenario::new(utilization, max_capacity).prefab(seed)
    });
    if let (Some(sink), Some(t)) = (driver_sink.as_mut(), build_start) {
        sink.record_with(
            t,
            "build",
            CAT_BUILD,
            vec![("prefabs".into(), needed.len().to_string())],
        );
    }
    let mut prefabs: Vec<Option<TrialPrefab>> = vec![None; trials];
    for (seed, prefab) in needed.into_iter().zip(built) {
        prefabs[seed as usize] = Some(prefab);
    }

    // Run: pending cells only, each worker replaying its share through
    // one pooled context. The grid is capacity-major then policy then
    // seed, so under seed grouping consecutive pending cells of one
    // `(capacity, policy)` point are sibling seeds: chunk them into
    // batches of at most `batch` lanes and simulate each batch in one
    // SoA pass. Under policy grouping the arms of one `(capacity,
    // seed)` trial — scattered across the policy-major grid — are
    // bucketed back together and run in lockstep. A batch width of 1
    // degenerates to the scalar per-cell path either way.
    let effective = grouping.resolve(policies.len(), batch);
    let groups: Vec<RunGroup> = match effective {
        GroupingMode::Seed | GroupingMode::Auto => {
            let mut groups: Vec<RunGroup> = Vec::new();
            for &i in &pending {
                let (_, capacity, policy, seed) = jobs[i];
                match groups.last_mut() {
                    Some(RunGroup::Seeds {
                        capacity: c,
                        policy: p,
                        lanes,
                    }) if *c == capacity && *p == policy && lanes.len() < batch => {
                        lanes.push((i, seed));
                    }
                    _ => groups.push(RunGroup::Seeds {
                        capacity,
                        policy,
                        lanes: vec![(i, seed)],
                    }),
                }
            }
            groups
        }
        GroupingMode::Policy => {
            // Scanning pending in grid order visits each `(capacity,
            // seed)` cell's arms in policy order; bucket them and emit
            // the groups in first-seen order so the split-back is
            // deterministic.
            let mut order: Vec<(usize, u64)> = Vec::new();
            let mut buckets: HashMap<(usize, u64), Vec<(usize, PolicyKind)>> = HashMap::new();
            for &i in &pending {
                let (ci, _, policy, seed) = jobs[i];
                buckets
                    .entry((ci, seed))
                    .or_insert_with(|| {
                        order.push((ci, seed));
                        Vec::new()
                    })
                    .push((i, policy));
            }
            let mut groups = Vec::new();
            for key in order {
                let arms = buckets.remove(&key).expect("bucketed above");
                for chunk in arms.chunks(batch) {
                    groups.push(RunGroup::Arms {
                        capacity: capacities[key.0],
                        seed: key.1,
                        arms: chunk.to_vec(),
                    });
                }
            }
            groups
        }
    };
    let (computed, pools) = parallel_map_with(
        groups,
        threads,
        |w| (w, SimPool::new(), telemetry.sink(w as u32 + 1)),
        |(worker, pool, sink), group| {
            let (capacity, runs) = match group {
                RunGroup::Seeds {
                    capacity,
                    policy,
                    lanes,
                } => {
                    let scenario = PaperScenario::new(utilization, capacity);
                    let lane_prefabs: Vec<&TrialPrefab> = lanes
                        .iter()
                        .map(|&(_, seed)| {
                            prefabs[seed as usize]
                                .as_ref()
                                .expect("prefab built for every pending seed")
                        })
                        .collect();
                    let cell_start = sink.as_ref().map(|s| s.start());
                    let results = if let [prefab] = lane_prefabs[..] {
                        vec![scenario.run_prefab_in(pool, policy, prefab)]
                    } else {
                        scenario.run_prefabs_batched_in(pool, policy, &lane_prefabs)
                    };
                    if let (Some(sink), Some(t)) = (sink.as_mut(), cell_start) {
                        sink.record_with(
                            t,
                            "cell",
                            CAT_SIMULATE,
                            vec![
                                (
                                    "key".into(),
                                    scenario.trial_key(policy, lanes[0].1).text().to_owned(),
                                ),
                                ("lanes".into(), lanes.len().to_string()),
                            ],
                        );
                    }
                    let runs: Vec<(usize, PolicyKind, u64, SimResult)> = lanes
                        .iter()
                        .zip(results)
                        .map(|(&(i, seed), result)| (i, policy, seed, result))
                        .collect();
                    (capacity, runs)
                }
                RunGroup::Arms {
                    capacity,
                    seed,
                    arms,
                } => {
                    let scenario = PaperScenario::new(utilization, capacity);
                    let prefab = prefabs[seed as usize]
                        .as_ref()
                        .expect("prefab built for every pending seed");
                    let arm_lanes: Vec<(PolicyKind, &TrialPrefab)> =
                        arms.iter().map(|&(_, p)| (p, prefab)).collect();
                    let cell_start = sink.as_ref().map(|s| s.start());
                    let results = if let [(policy, prefab)] = arm_lanes[..] {
                        vec![scenario.run_prefab_in(pool, policy, prefab)]
                    } else {
                        scenario.run_arms_batched_in(pool, &arm_lanes)
                    };
                    if let (Some(sink), Some(t)) = (sink.as_mut(), cell_start) {
                        sink.record_with(
                            t,
                            "cell",
                            CAT_SIMULATE,
                            vec![
                                (
                                    "key".into(),
                                    scenario.trial_key(arms[0].1, seed).text().to_owned(),
                                ),
                                ("arms".into(), arms.len().to_string()),
                            ],
                        );
                    }
                    let runs: Vec<(usize, PolicyKind, u64, SimResult)> = arms
                        .iter()
                        .zip(results)
                        .map(|(&(i, policy), result)| (i, policy, seed, result))
                        .collect();
                    (capacity, runs)
                }
            };
            let scenario = PaperScenario::new(utilization, capacity);
            runs.into_iter()
                .map(|(i, policy, seed, result)| {
                    let summary = TrialSummary::of(&result);
                    let key = scenario.trial_key(policy, seed);
                    if let Some(c) = store {
                        let store_start = sink.as_ref().map(|s| s.start());
                        c.store(&key, &summary);
                        if let (Some(sink), Some(t)) = (sink.as_mut(), store_start) {
                            sink.record(t, "store", CAT_STORE);
                        }
                    }
                    telemetry.cell(CellDecision::Simulated, key.text(), *worker);
                    (i, summary)
                })
                .collect::<Vec<_>>()
        },
    );
    for (_, pool, _) in &pools {
        stats.merge_pool(pool.stats());
    }
    if let Some(progress) = &telemetry.progress {
        progress.note_lane_high_water(
            stats
                .pool
                .batch_lane_high_water
                .max(stats.pool.batch_policy_lane_high_water),
        );
        progress.note_batch_occupancy(
            effective.label(),
            stats.pool.batch_ticks,
            stats.pool.multi_lane_ticks,
        );
    }
    for (i, summary) in computed.into_iter().flatten() {
        summaries[i] = Some(summary);
    }

    let mut rows: Vec<MissRateRow> = capacities
        .iter()
        .map(|&c| MissRateRow {
            capacity: c,
            normalized_capacity: c / max_capacity,
            miss_rates: vec![0.0; policies.len()],
        })
        .collect();
    for ((ci, _, policy, _), summary) in jobs.into_iter().zip(summaries) {
        let pi = policies
            .iter()
            .position(|&p| p == policy)
            .expect("policy in list");
        let rate = summary.expect("every cell resolved").miss_rate();
        rows[ci].miss_rates[pi] += rate / trials as f64;
    }
    let figure = MissRateFigure {
        utilization,
        policies: policies.to_vec(),
        rows,
        trials,
    };
    if let (Some(sink), Some(t)) = (driver_sink.as_mut(), figure_start) {
        sink.record_with(
            t,
            "miss-rate-figure",
            CAT_FIGURE,
            vec![("utilization".into(), utilization.to_string())],
        );
    }
    (figure, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ascending_and_normalized() {
        let caps = sweep_capacities();
        assert!(caps.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*caps.last().unwrap(), 5000.0);
    }

    /// A batched sweep must reproduce the scalar figure exactly, and the
    /// batched-run counters must show the lanes actually fused.
    #[test]
    fn batched_sweep_matches_scalar() {
        let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
        let (scalar, _) = miss_rate_figure_cached_batched(None, 0.8, &policies, 4, 2, 1);
        let (batched, stats) = miss_rate_figure_cached_batched(None, 0.8, &policies, 4, 2, 4);
        assert_eq!(scalar, batched);
        assert!(stats.pool.batched_runs > 0, "batches should run lean lanes");
        assert_eq!(stats.pool.batch_lane_high_water, 4);
    }

    /// A policy-lockstep sweep must also reproduce the scalar figure
    /// exactly, fill the lockstep counters (and only those), and show
    /// real multi-lane synchrony.
    #[test]
    fn policy_grouped_sweep_matches_scalar() {
        let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
        let (scalar, _) = miss_rate_figure_cached_batched(None, 0.8, &policies, 4, 2, 1);
        let (grouped, stats) = miss_rate_figure_grouped(
            None,
            0.8,
            &policies,
            4,
            2,
            4,
            GroupingMode::Policy,
            &CampaignTelemetry::off(),
        );
        assert_eq!(scalar, grouped);
        assert!(stats.pool.policy_batched_runs > 0, "arms should fuse");
        assert_eq!(
            stats.pool.batch_policy_lane_high_water,
            policies.len() as u64
        );
        assert_eq!(
            stats.pool.batch_lane_high_water, 0,
            "no sibling-seed batches ran"
        );
        assert!(stats.pool.batch_ticks > 0);
        assert!(
            stats.pool.multi_lane_ticks > 0,
            "lockstep arms share instants"
        );
        assert!(stats.pool.multi_lane_ticks <= stats.pool.batch_ticks);
    }

    /// `Auto` picks policy lockstep for a multi-policy batched sweep and
    /// stays bit-identical.
    #[test]
    fn auto_grouping_picks_policy_for_multi_policy_sweeps() {
        let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
        assert_eq!(
            GroupingMode::Auto.resolve(policies.len(), 4),
            GroupingMode::Policy
        );
        assert_eq!(GroupingMode::Auto.resolve(1, 4), GroupingMode::Seed);
        assert_eq!(GroupingMode::Auto.resolve(2, 1), GroupingMode::Seed);
        let (scalar, _) = miss_rate_figure_cached_batched(None, 0.8, &policies, 3, 2, 1);
        let (auto, stats) = miss_rate_figure_grouped(
            None,
            0.8,
            &policies,
            3,
            2,
            4,
            GroupingMode::Auto,
            &CampaignTelemetry::off(),
        );
        assert_eq!(scalar, auto);
        assert!(stats.pool.policy_batched_runs > 0);
    }

    /// Shrunk Fig. 8 headline: at U = 0.4, EA-DVFS misses markedly fewer
    /// deadlines than LSA.
    #[test]
    fn ea_dvfs_beats_lsa_at_low_utilization() {
        let fig = miss_rate_figure(0.4, &[PolicyKind::Lsa, PolicyKind::EaDvfs], 3, 2);
        let lsa = fig.mean_miss_rate(PolicyKind::Lsa).unwrap();
        let ea = fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap();
        assert!(
            ea < lsa,
            "EA-DVFS should miss less (ea {ea:.3} vs lsa {lsa:.3})"
        );
        // Monotone-ish: the largest capacity should not miss more than
        // the smallest.
        let curve = fig.curve(PolicyKind::EaDvfs).unwrap();
        assert!(curve.last().unwrap() <= curve.first().unwrap());
    }
}
