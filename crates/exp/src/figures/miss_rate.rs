//! Figures 8–9: deadline miss rate vs. normalized storage capacity.

use serde::{Deserialize, Serialize};

use crate::parallel::parallel_map;
use crate::scenario::{PaperScenario, PolicyKind, TrialPrefab};

/// One capacity point of a miss-rate sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRateRow {
    /// Absolute capacity.
    pub capacity: f64,
    /// Capacity normalized by the sweep maximum (the paper's x axis).
    pub normalized_capacity: f64,
    /// Mean miss rate per policy, in `policies` order.
    pub miss_rates: Vec<f64>,
}

/// Data behind Figures 8 (U = 0.4) and 9 (U = 0.8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRateFigure {
    /// Workload utilization.
    pub utilization: f64,
    /// Policies, in row order.
    pub policies: Vec<PolicyKind>,
    /// One row per swept capacity, ascending.
    pub rows: Vec<MissRateRow>,
    /// Task sets per capacity point.
    pub trials: usize,
}

impl MissRateFigure {
    /// Mean miss rate of `policy` across all capacities.
    pub fn mean_miss_rate(&self, policy: PolicyKind) -> Option<f64> {
        let idx = self.policies.iter().position(|&p| p == policy)?;
        let sum: f64 = self.rows.iter().map(|r| r.miss_rates[idx]).sum();
        Some(sum / self.rows.len() as f64)
    }

    /// The miss-rate curve of `policy` (aligned with `rows`).
    pub fn curve(&self, policy: PolicyKind) -> Option<Vec<f64>> {
        let idx = self.policies.iter().position(|&p| p == policy)?;
        Some(self.rows.iter().map(|r| r.miss_rates[idx]).collect())
    }
}

/// The capacity sweep used for Figs. 8–9 (denser at the small end where
/// the curves move fastest; maximum matches the paper's 5 000).
pub(crate) fn sweep_capacities() -> Vec<f64> {
    vec![
        50.0, 100.0, 200.0, 300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0, 3000.0, 4000.0, 5000.0,
    ]
}

/// Reproduces Fig. 8/9 for the given utilization.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero.
pub fn miss_rate_figure(
    utilization: f64,
    policies: &[PolicyKind],
    trials: usize,
    threads: usize,
) -> MissRateFigure {
    assert!(trials > 0, "need at least one trial");
    let capacities = sweep_capacities();
    let max_capacity = capacities.last().copied().expect("non-empty sweep");
    // A trial's solar realization and task set depend on the seed but
    // not the capacity or policy, so each prefab is built once and
    // shared across the whole capacities × policies grid.
    let prefabs: Vec<TrialPrefab> = parallel_map(0..trials as u64, threads, |seed| {
        PaperScenario::new(utilization, max_capacity).prefab(seed)
    });
    let jobs: Vec<(usize, f64, PolicyKind, u64)> = capacities
        .iter()
        .enumerate()
        .flat_map(|(ci, &c)| {
            policies
                .iter()
                .flat_map(move |&p| (0..trials as u64).map(move |s| (ci, c, p, s)))
        })
        .collect();
    let rates = parallel_map(jobs.clone(), threads, |(_, capacity, policy, seed)| {
        PaperScenario::new(utilization, capacity)
            .run_prefab(policy, &prefabs[seed as usize])
            .miss_rate()
    });
    let mut rows: Vec<MissRateRow> = capacities
        .iter()
        .map(|&c| MissRateRow {
            capacity: c,
            normalized_capacity: c / max_capacity,
            miss_rates: vec![0.0; policies.len()],
        })
        .collect();
    for ((ci, _, policy, _), rate) in jobs.into_iter().zip(rates) {
        let pi = policies
            .iter()
            .position(|&p| p == policy)
            .expect("policy in list");
        rows[ci].miss_rates[pi] += rate / trials as f64;
    }
    MissRateFigure {
        utilization,
        policies: policies.to_vec(),
        rows,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ascending_and_normalized() {
        let caps = sweep_capacities();
        assert!(caps.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*caps.last().unwrap(), 5000.0);
    }

    /// Shrunk Fig. 8 headline: at U = 0.4, EA-DVFS misses markedly fewer
    /// deadlines than LSA.
    #[test]
    fn ea_dvfs_beats_lsa_at_low_utilization() {
        let fig = miss_rate_figure(0.4, &[PolicyKind::Lsa, PolicyKind::EaDvfs], 3, 2);
        let lsa = fig.mean_miss_rate(PolicyKind::Lsa).unwrap();
        let ea = fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap();
        assert!(
            ea < lsa,
            "EA-DVFS should miss less (ea {ea:.3} vs lsa {lsa:.3})"
        );
        // Monotone-ish: the largest capacity should not miss more than
        // the smallest.
        let curve = fig.curve(PolicyKind::EaDvfs).unwrap();
        assert!(curve.last().unwrap() <= curve.first().unwrap());
    }
}
