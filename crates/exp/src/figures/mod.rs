//! Reproduction of every figure and table in the paper's evaluation
//! (§5).
//!
//! | Paper artifact | Function | Binary |
//! |----------------|----------|--------|
//! | Fig. 5 (source behaviour)        | [`source_figure`] | `fig5` |
//! | Fig. 6 (remaining energy, U=0.4) | [`remaining_energy_figure`] | `fig6` |
//! | Fig. 7 (remaining energy, U=0.8) | [`remaining_energy_figure`] | `fig7` |
//! | Fig. 8 (miss rate, U=0.4)        | [`miss_rate_figure`] | `fig8` |
//! | Fig. 9 (miss rate, U=0.8)        | [`miss_rate_figure`] | `fig9` |
//! | Table 1 (min storage ratio)      | [`min_capacity_table`] | `table1` |

mod min_capacity;
mod miss_rate;
mod remaining_energy;
mod source;

pub use min_capacity::{
    min_capacity_table, min_zero_miss_capacity, MinCapacityRow, MinCapacityTable,
};
pub use miss_rate::{miss_rate_figure, MissRateFigure, MissRateRow};
pub use remaining_energy::{remaining_energy_figure, RemainingEnergyFigure};
pub use source::{source_figure, SourceFigure};

/// The storage capacities the paper sweeps for the remaining-energy
/// curves (§5.2).
pub const PAPER_CAPACITIES: [f64; 7] = [200.0, 300.0, 500.0, 1000.0, 2000.0, 3000.0, 5000.0];
