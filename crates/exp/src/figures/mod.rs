//! Reproduction of every figure and table in the paper's evaluation
//! (§5).
//!
//! | Paper artifact | Function | Binary |
//! |----------------|----------|--------|
//! | Fig. 5 (source behaviour)        | [`source_figure`] | `fig5` |
//! | Fig. 6 (remaining energy, U=0.4) | [`remaining_energy_figure`] | `fig6` |
//! | Fig. 7 (remaining energy, U=0.8) | [`remaining_energy_figure`] | `fig7` |
//! | Fig. 8 (miss rate, U=0.4)        | [`miss_rate_figure`] | `fig8` |
//! | Fig. 9 (miss rate, U=0.8)        | [`miss_rate_figure`] | `fig9` |
//! | Table 1 (min storage ratio)      | [`min_capacity_table`] | `table1` |

mod min_capacity;
mod miss_rate;
mod remaining_energy;
mod robustness;
mod source;

pub use min_capacity::{
    min_capacity_table, min_zero_miss_capacity, min_zero_miss_capacity_cached, MinCapacityRow,
    MinCapacityTable,
};
pub use miss_rate::{
    miss_rate_figure, miss_rate_figure_cached, miss_rate_figure_cached_batched,
    miss_rate_figure_grouped, miss_rate_figure_instrumented, MissRateFigure, MissRateRow,
};
pub use remaining_energy::{
    remaining_energy_figure, remaining_energy_figure_cached, RemainingEnergyFigure,
};
pub use robustness::{
    robustness_campaign, robustness_campaign_instrumented, robustness_figure, CampaignReport, Cell,
    QuarantineRecord, RobustnessConfig, RobustnessFigure, RobustnessRow, Sabotage,
};
pub use source::{source_figure, SourceFigure};

use harvest_core::system::PoolStats;

/// How a figure driver groups pending grid cells into SoA batch lanes.
///
/// The grid is `(capacity, policy, seed)`; either axis can supply the
/// sibling lanes of one batch. Sibling *seeds* share a scenario and
/// policy but diverge as their task sets differ; sibling *policies*
/// (policy lockstep) replay the exact same prefab under each policy
/// arm, so their release timelines are identical and the lanes stay
/// synchronous for longer. Both groupings are bit-identical to the
/// scalar sweep — only throughput and batch occupancy change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingMode {
    /// Lanes are sibling seeds of one `(capacity, policy)` point.
    #[default]
    Seed,
    /// Lanes are policy arms of one `(capacity, seed)` trial.
    Policy,
    /// Picks per sweep: `Policy` when at least two policies are swept
    /// with a batch width of at least two, otherwise `Seed`.
    Auto,
}

impl GroupingMode {
    /// Resolves `Auto` against the sweep shape.
    #[must_use]
    pub fn resolve(self, policies: usize, batch: usize) -> GroupingMode {
        match self {
            GroupingMode::Auto if policies >= 2 && batch >= 2 => GroupingMode::Policy,
            GroupingMode::Auto => GroupingMode::Seed,
            fixed => fixed,
        }
    }

    /// Stable lower-case name, used by telemetry and the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GroupingMode::Seed => "seed",
            GroupingMode::Policy => "policy",
            GroupingMode::Auto => "auto",
        }
    }
}

impl std::str::FromStr for GroupingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "seed" => Ok(GroupingMode::Seed),
            "policy" => Ok(GroupingMode::Policy),
            "auto" => Ok(GroupingMode::Auto),
            other => Err(format!(
                "unknown batch grouping '{other}' (expected seed, policy, or auto)"
            )),
        }
    }
}

/// How a cache-aware sweep executed: which cells were actually
/// simulated versus answered by a verified cache hit, and how well the
/// per-worker pooled run contexts were reused. Returned by the
/// `*_cached` figure variants so callers (the `exp sweep` smoke command,
/// benchmarks, CI) can assert e.g. that a warm re-run simulated zero
/// trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepExecStats {
    /// Cells simulated this run.
    pub simulated: u64,
    /// Cells answered from the sweep cache.
    pub cached: u64,
    /// Pool reuse counters aggregated across all workers: total pooled
    /// runs, and the maximum retained queue capacities.
    pub pool: PoolStats,
}

impl SweepExecStats {
    /// Folds one worker pool's counters into the aggregate.
    pub fn merge_pool(&mut self, p: PoolStats) {
        self.pool.runs += p.runs;
        self.pool.batched_runs += p.batched_runs;
        self.pool.policy_batched_runs += p.policy_batched_runs;
        self.pool.batch_ticks += p.batch_ticks;
        self.pool.multi_lane_ticks += p.multi_lane_ticks;
        self.pool.event_slab_high_water =
            self.pool.event_slab_high_water.max(p.event_slab_high_water);
        self.pool.ready_high_water = self.pool.ready_high_water.max(p.ready_high_water);
        self.pool.batch_lane_high_water =
            self.pool.batch_lane_high_water.max(p.batch_lane_high_water);
        self.pool.batch_policy_lane_high_water = self
            .pool
            .batch_policy_lane_high_water
            .max(p.batch_policy_lane_high_water);
    }

    /// Folds another sweep's stats into this one (pool high-water marks
    /// take the max, counts add).
    pub fn merge(&mut self, other: &SweepExecStats) {
        self.simulated += other.simulated;
        self.cached += other.cached;
        self.merge_pool(other.pool);
    }
}

/// The storage capacities the paper sweeps for the remaining-energy
/// curves (§5.2).
pub const PAPER_CAPACITIES: [f64; 7] = [200.0, 300.0, 500.0, 1000.0, 2000.0, 3000.0, 5000.0];
