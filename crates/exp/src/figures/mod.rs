//! Reproduction of every figure and table in the paper's evaluation
//! (§5).
//!
//! | Paper artifact | Function | Binary |
//! |----------------|----------|--------|
//! | Fig. 5 (source behaviour)        | [`source_figure`] | `fig5` |
//! | Fig. 6 (remaining energy, U=0.4) | [`remaining_energy_figure`] | `fig6` |
//! | Fig. 7 (remaining energy, U=0.8) | [`remaining_energy_figure`] | `fig7` |
//! | Fig. 8 (miss rate, U=0.4)        | [`miss_rate_figure`] | `fig8` |
//! | Fig. 9 (miss rate, U=0.8)        | [`miss_rate_figure`] | `fig9` |
//! | Table 1 (min storage ratio)      | [`min_capacity_table`] | `table1` |

mod min_capacity;
mod miss_rate;
mod remaining_energy;
mod robustness;
mod source;

pub use min_capacity::{
    min_capacity_table, min_zero_miss_capacity, min_zero_miss_capacity_cached, MinCapacityRow,
    MinCapacityTable,
};
pub use miss_rate::{
    miss_rate_figure, miss_rate_figure_cached, miss_rate_figure_cached_batched,
    miss_rate_figure_instrumented, MissRateFigure, MissRateRow,
};
pub use remaining_energy::{
    remaining_energy_figure, remaining_energy_figure_cached, RemainingEnergyFigure,
};
pub use robustness::{
    robustness_campaign, robustness_campaign_instrumented, robustness_figure, CampaignReport, Cell,
    QuarantineRecord, RobustnessConfig, RobustnessFigure, RobustnessRow, Sabotage,
};
pub use source::{source_figure, SourceFigure};

use harvest_core::system::PoolStats;

/// How a cache-aware sweep executed: which cells were actually
/// simulated versus answered by a verified cache hit, and how well the
/// per-worker pooled run contexts were reused. Returned by the
/// `*_cached` figure variants so callers (the `exp sweep` smoke command,
/// benchmarks, CI) can assert e.g. that a warm re-run simulated zero
/// trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepExecStats {
    /// Cells simulated this run.
    pub simulated: u64,
    /// Cells answered from the sweep cache.
    pub cached: u64,
    /// Pool reuse counters aggregated across all workers: total pooled
    /// runs, and the maximum retained queue capacities.
    pub pool: PoolStats,
}

impl SweepExecStats {
    /// Folds one worker pool's counters into the aggregate.
    pub fn merge_pool(&mut self, p: PoolStats) {
        self.pool.runs += p.runs;
        self.pool.batched_runs += p.batched_runs;
        self.pool.event_slab_high_water =
            self.pool.event_slab_high_water.max(p.event_slab_high_water);
        self.pool.ready_high_water = self.pool.ready_high_water.max(p.ready_high_water);
        self.pool.batch_lane_high_water =
            self.pool.batch_lane_high_water.max(p.batch_lane_high_water);
    }

    /// Folds another sweep's stats into this one (pool high-water marks
    /// take the max, counts add).
    pub fn merge(&mut self, other: &SweepExecStats) {
        self.simulated += other.simulated;
        self.cached += other.cached;
        self.merge_pool(other.pool);
    }
}

/// The storage capacities the paper sweeps for the remaining-energy
/// curves (§5.2).
pub const PAPER_CAPACITIES: [f64; 7] = [200.0, 300.0, 500.0, 1000.0, 2000.0, 3000.0, 5000.0];
