//! # harvest-exp — the paper's evaluation, regenerated
//!
//! Everything needed to reproduce §5 of the EA-DVFS paper:
//!
//! * [`scenario`] — the §5.1 setup (XScale CPU, eq. 13 solar source,
//!   5-task workloads, 10 000-unit horizon) behind one seeded knob.
//! * [`figures`] — one function per paper figure/table (Figs. 5–9,
//!   Table 1).
//! * [`parallel`] — deterministic multi-threaded trial fan-out.
//! * [`report`] — aligned tables, ASCII plots, CSV.
//! * [`cli`] — the uniform flags of the `fig5`…`table1` binaries.
//! * [`artifact`] — the JSONL run-artifact schema behind `exp record`
//!   / `exp inspect` / `exp diff`.
//!
//! Binaries (in this crate): `fig5`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `table1`, `repro-all` which runs the whole evaluation, and `exp`,
//! the run recorder/inspector.
//!
//! # Examples
//!
//! ```
//! use harvest_exp::scenario::{PaperScenario, PolicyKind};
//!
//! // One seeded trial of the Fig. 8 setting (U = 0.4, C = 500).
//! let result = PaperScenario::new(0.4, 500.0).run(PolicyKind::EaDvfs, 0);
//! assert!(result.released() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod cli;
pub mod figures;
pub mod parallel;
pub mod record;
pub mod report;
pub mod scenario;

pub use figures::{min_capacity_table, miss_rate_figure, remaining_energy_figure, source_figure};
pub use scenario::{PaperScenario, PolicyKind, PredictorKind};
