//! # harvest-exp — the paper's evaluation, regenerated
//!
//! Everything needed to reproduce §5 of the EA-DVFS paper:
//!
//! * [`scenario`] — the §5.1 setup (XScale CPU, eq. 13 solar source,
//!   5-task workloads, 10 000-unit horizon) behind one seeded knob.
//! * [`figures`] — one function per paper figure/table (Figs. 5–9,
//!   Table 1).
//! * [`parallel`] — deterministic multi-threaded trial fan-out, with a
//!   quarantining mode that contains per-cell panics.
//! * [`manifest`] — the incremental checkpoint file behind
//!   kill-and-resume campaigns.
//! * [`store`] — the pack-file result store: segment-packed trial
//!   summaries, batch probes, unified cache + resume records.
//! * [`telemetry`] — the campaign observer bundle: span tracing with
//!   Chrome-trace export, live progress streaming, and crash
//!   flight-recorder dumps (`exp sweep --trace/--progress`,
//!   `exp fault-sweep --flight`).
//! * [`report`] — aligned tables, ASCII plots, CSV.
//! * [`cli`] — the uniform flags of the `fig5`…`table1` binaries.
//! * [`artifact`] — the JSONL run-artifact schema behind `exp record`
//!   / `exp inspect` / `exp diff`.
//!
//! Binaries (in this crate): `fig5`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `table1`, `repro-all` which runs the whole evaluation, and `exp`,
//! the run recorder/inspector.
//!
//! # Examples
//!
//! ```
//! use harvest_exp::scenario::{PaperScenario, PolicyKind};
//!
//! // One seeded trial of the Fig. 8 setting (U = 0.4, C = 500).
//! let result = PaperScenario::new(0.4, 500.0).run(PolicyKind::EaDvfs, 0);
//! assert!(result.released() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod cache;
pub mod cli;
pub mod figures;
pub mod manifest;
pub mod parallel;
pub mod record;
pub mod report;
pub mod scenario;
pub mod store;
pub mod telemetry;

/// Shared helpers for tests that mutate process-global state (currently
/// environment variables). Exposed (doc-hidden) rather than
/// `#[cfg(test)]` so the crate's integration tests and unit tests share
/// one lock.
#[doc(hidden)]
pub mod test_support {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    /// Serializes every test that reads or writes process-global
    /// environment variables (`HARVEST_THREADS`, `HARVEST_SWEEP_CACHE`,
    /// …). `std::env::set_var` is process-wide, so unsynchronized tests
    /// race; take this lock around *both* mutation and the code under
    /// test. Poisoning is ignored: a panicked test must not cascade.
    pub fn env_lock() -> MutexGuard<'static, ()> {
        ENV_LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs `f` with each `(key, value)` pair applied (`None` removes
    /// the variable), holding [`env_lock`] throughout, and restores the
    /// prior values afterwards — also on panic, via a drop guard.
    pub fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
        struct Restore {
            saved: HashMap<String, Option<String>>,
            _guard: MutexGuard<'static, ()>,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                for (key, value) in &self.saved {
                    match value {
                        Some(v) => std::env::set_var(key, v),
                        None => std::env::remove_var(key),
                    }
                }
            }
        }
        let restore = Restore {
            saved: pairs
                .iter()
                .map(|(k, _)| (k.to_string(), std::env::var(k).ok()))
                .collect(),
            _guard: env_lock(),
        };
        for (key, value) in pairs {
            match value {
                Some(v) => std::env::set_var(key, v),
                None => std::env::remove_var(key),
            }
        }
        let out = f();
        drop(restore);
        out
    }
}

pub use figures::{
    min_capacity_table, miss_rate_figure, remaining_energy_figure, robustness_figure, source_figure,
};
pub use scenario::{FaultScenario, PaperScenario, PolicyKind, PredictorKind};
