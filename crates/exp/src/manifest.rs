//! Incrementally-written sweep manifest: checkpoint/resume for long
//! campaigns.
//!
//! A campaign writes one JSONL line per *decided* cell — `done` with
//! its [`TrialSummary`], or `quarantined` with its [`CellFailure`] —
//! flushing after every line. A killed campaign therefore leaves a
//! manifest naming every cell it finished; re-running with the same
//! manifest resolves those cells without re-simulating and only the
//! pending remainder executes.
//!
//! Integrity rules mirror [`crate::cache`]:
//!
//! * Cells are keyed by the canonical [`TrialKey`](crate::cache::TrialKey)
//!   **text** (schema version + serialized scenario + policy + seed),
//!   so a manifest can never resolve a cell from a different grid, and
//!   renaming/reordering the grid misses naturally.
//! * A kill mid-write can leave a torn final line. [`SweepManifest::open`]
//!   tolerates that: the damaged tail is truncated away and its cells
//!   recompute. A corrupt line *inside* the file conservatively drops
//!   everything from the corruption onward.
//! * Quarantined cells count as decided: the simulator is
//!   deterministic, so a cell that panicked or tripped the watchdog
//!   will do so again — resuming re-reports it instead of re-failing.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::cache::TrialSummary;
use crate::parallel::CellFailure;
use harvest_obs::io::{Durability, IoCounters, IoHealth, RealIo, RetryPolicy, StoreFile, StoreIo};

/// How a manifest remembers one decided cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell simulated (or cache-resolved) cleanly.
    Done(TrialSummary),
    /// The cell was quarantined: it panicked or returned a typed
    /// simulation error.
    Quarantined(CellFailure),
}

/// On-disk line layout. `status` discriminates; exactly one of
/// `summary`/`failure` is populated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestLine {
    key: String,
    status: String,
    summary: Option<TrialSummary>,
    failure: Option<CellFailure>,
}

impl ManifestLine {
    fn into_entry(self) -> Option<(String, CellOutcome)> {
        let outcome = match self.status.as_str() {
            "done" => CellOutcome::Done(self.summary?),
            "quarantined" => CellOutcome::Quarantined(self.failure?),
            _ => return None,
        };
        Some((self.key, outcome))
    }
}

#[derive(Debug)]
struct ManifestState {
    file: Box<dyn StoreFile>,
    entries: HashMap<String, CellOutcome>,
    /// Lines appended since the last successful durability barrier.
    dirty: u64,
}

/// A checkpoint file for one sweep campaign (see the module docs).
///
/// Shared immutably across workers: records serialize through an
/// internal mutex and flush line-by-line, so the on-disk state always
/// trails the in-flight campaign by at most the line being written.
#[derive(Debug)]
pub struct SweepManifest {
    path: PathBuf,
    resumed: usize,
    retry: RetryPolicy,
    durability: Durability,
    counters: Arc<IoCounters>,
    state: Mutex<ManifestState>,
}

impl SweepManifest {
    /// Opens `path`, creating it when absent and loading every decided
    /// cell when present. A torn or corrupt tail is truncated away (its
    /// cells simply recompute); the good prefix is kept.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error when the file cannot be read,
    /// truncated, or opened for append.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with(
            path,
            RealIo::shared(),
            RetryPolicy::default(),
            Durability::default(),
        )
    }

    /// [`open`](Self::open) with an explicit I/O backend, retry policy,
    /// and durability level (fault injection in tests; the
    /// `--durability` flag).
    ///
    /// # Errors
    ///
    /// Same contract as [`open`](Self::open).
    pub fn open_with(
        path: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
        durability: Durability,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let text = match io.read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut entries = HashMap::new();
        let mut good = 0usize;
        for chunk in text.split_inclusive('\n') {
            if !chunk.ends_with('\n') {
                break; // torn tail from a kill mid-write
            }
            let line = chunk.trim();
            if line.is_empty() {
                good += chunk.len();
                continue;
            }
            match serde_json::from_str::<ManifestLine>(line)
                .ok()
                .and_then(ManifestLine::into_entry)
            {
                Some((key, outcome)) => {
                    entries.insert(key, outcome);
                    good += chunk.len();
                }
                None => break, // corruption: drop it and everything after
            }
        }
        if good < text.len() {
            io.truncate(&path, good as u64)?;
        }
        let file = io.open_append(&path)?;
        Ok(SweepManifest {
            path,
            resumed: entries.len(),
            retry,
            durability,
            counters: Arc::new(IoCounters::default()),
            state: Mutex::new(ManifestState {
                file,
                entries,
                dirty: 0,
            }),
        })
    }

    /// Where the manifest lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many decided cells [`open`](Self::open) loaded — the cells a
    /// resumed campaign will not re-simulate.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Decided cells right now (resumed plus recorded).
    pub fn len(&self) -> usize {
        self.state.lock().expect("manifest lock").entries.len()
    }

    /// `true` when no cell has been decided.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The outcome recorded for a cell key, if any.
    pub fn get(&self, key_text: &str) -> Option<CellOutcome> {
        self.state
            .lock()
            .expect("manifest lock")
            .entries
            .get(key_text)
            .cloned()
    }

    /// Every decided cell, sorted by key text — the same shape
    /// `PackStore::decided_entries` reports, so `exp report` can fold
    /// either source.
    pub fn decided_entries(&self) -> Vec<(String, CellOutcome)> {
        let mut out: Vec<(String, CellOutcome)> = self
            .state
            .lock()
            .expect("manifest lock")
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn record(&self, key_text: &str, outcome: CellOutcome) -> std::io::Result<()> {
        let line = match &outcome {
            CellOutcome::Done(summary) => ManifestLine {
                key: key_text.to_owned(),
                status: "done".to_owned(),
                summary: Some(summary.clone()),
                failure: None,
            },
            CellOutcome::Quarantined(failure) => ManifestLine {
                key: key_text.to_owned(),
                status: "quarantined".to_owned(),
                summary: None,
                failure: Some(failure.clone()),
            },
        };
        let json = serde_json::to_string(&line).map_err(std::io::Error::other)?;
        let mut state = self.state.lock().expect("manifest lock");
        // Appends retry transients on the deterministic schedule. A
        // retry after a partial write can tear this line; the reopen
        // discipline (drop from the first undecodable chunk) then
        // recomputes exactly the cells at or after the tear.
        let state_ref = &mut *state;
        self.retry.run(&self.counters, || {
            writeln!(state_ref.file, "{json}")?;
            state_ref.file.flush()
        })?;
        match self.durability {
            Durability::Record => {
                if state.file.sync_all().is_err() {
                    self.counters.note_sync_failure();
                }
            }
            Durability::Batch => state.dirty += 1,
            Durability::None => {}
        }
        state.entries.insert(key_text.to_owned(), outcome);
        Ok(())
    }

    /// Durability barrier: when running at [`Durability::Batch`], syncs
    /// any lines appended since the last barrier. A sync failure is
    /// counted (`store.sync_failures`) but does not fail the campaign —
    /// the lines are still queued with the kernel.
    pub fn barrier(&self) {
        if self.durability != Durability::Batch {
            return;
        }
        let mut state = self.state.lock().expect("manifest lock");
        if state.dirty == 0 {
            return;
        }
        state.dirty = 0;
        if state.file.sync_all().is_err() {
            self.counters.note_sync_failure();
        }
    }

    /// Snapshot of this manifest's recovery accounting (retries taken,
    /// sync failures).
    pub fn io_health(&self) -> IoHealth {
        self.counters.snapshot()
    }

    /// Checkpoints a cleanly decided cell.
    ///
    /// # Errors
    ///
    /// Returns the IO error when the line cannot be appended; the
    /// in-memory map is only updated on success, so a failed checkpoint
    /// never claims durability it does not have.
    pub fn record_done(&self, key_text: &str, summary: &TrialSummary) -> std::io::Result<()> {
        self.record(key_text, CellOutcome::Done(summary.clone()))
    }

    /// Checkpoints a quarantined cell.
    ///
    /// # Errors
    ///
    /// Same contract as [`record_done`](Self::record_done).
    pub fn record_quarantined(&self, key_text: &str, failure: &CellFailure) -> std::io::Result<()> {
        self.record(key_text, CellOutcome::Quarantined(failure.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "harvest-manifest-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sweep.manifest.jsonl")
    }

    fn summary(missed: u64) -> TrialSummary {
        TrialSummary {
            released: 10,
            completed_in_time: 10 - missed,
            missed,
            sample_level_bits: Vec::new(),
        }
    }

    fn failure() -> CellFailure {
        CellFailure {
            message: "injected panic".to_owned(),
            panicked: true,
            worker: 2,
            flight: Some("target/flight/deadbeef.flight.jsonl".to_owned()),
        }
    }

    #[test]
    fn records_resume_across_reopen() {
        let path = scratch("resume");
        let m = SweepManifest::open(&path).unwrap();
        assert_eq!(m.resumed(), 0);
        assert!(m.is_empty());
        m.record_done("cell-a", &summary(1)).unwrap();
        m.record_quarantined("cell-b", &failure()).unwrap();
        assert_eq!(m.len(), 2);
        drop(m);

        let m = SweepManifest::open(&path).unwrap();
        assert_eq!(m.resumed(), 2);
        assert_eq!(m.get("cell-a"), Some(CellOutcome::Done(summary(1))));
        assert_eq!(
            m.get("cell-b"),
            Some(CellOutcome::Quarantined(failure())),
            "quarantined cells stay decided on resume"
        );
        assert_eq!(m.get("cell-c"), None);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_and_recomputes() {
        let path = scratch("torn");
        let m = SweepManifest::open(&path).unwrap();
        m.record_done("cell-a", &summary(0)).unwrap();
        m.record_done("cell-b", &summary(2)).unwrap();
        drop(m);
        // Simulate a kill mid-write: append half a line, no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"cell-c\",\"status\":\"do");
        std::fs::write(&path, &text).unwrap();

        let m = SweepManifest::open(&path).unwrap();
        assert_eq!(m.resumed(), 2, "good prefix survives");
        assert_eq!(m.get("cell-c"), None, "torn cell recomputes");
        // The torn bytes are gone: a new record appends cleanly.
        m.record_done("cell-c", &summary(3)).unwrap();
        drop(m);
        let m = SweepManifest::open(&path).unwrap();
        assert_eq!(m.resumed(), 3);
        assert_eq!(m.get("cell-c"), Some(CellOutcome::Done(summary(3))));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn interior_corruption_drops_the_tail() {
        let path = scratch("interior");
        let m = SweepManifest::open(&path).unwrap();
        m.record_done("cell-a", &summary(0)).unwrap();
        m.record_done("cell-b", &summary(1)).unwrap();
        m.record_done("cell-c", &summary(2)).unwrap();
        drop(m);
        // Corrupt the middle line.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\ngarbage not json\n{}\n", lines[0], lines[2]);
        std::fs::write(&path, mangled).unwrap();

        let m = SweepManifest::open(&path).unwrap();
        assert_eq!(m.resumed(), 1, "only the prefix before corruption");
        assert!(m.get("cell-a").is_some());
        assert_eq!(m.get("cell-c"), None, "post-corruption cells recompute");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn last_write_wins_on_duplicate_keys() {
        let path = scratch("dup");
        let m = SweepManifest::open(&path).unwrap();
        m.record_quarantined("cell-a", &failure()).unwrap();
        m.record_done("cell-a", &summary(4)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("cell-a"), Some(CellOutcome::Done(summary(4))));
        drop(m);
        let m = SweepManifest::open(&path).unwrap();
        assert_eq!(m.get("cell-a"), Some(CellOutcome::Done(summary(4))));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
