//! Minimal command-line parsing shared by the reproduction binaries.
//!
//! Kept dependency-free on purpose: the binaries accept a handful of
//! uniform flags (`--trials`, `--threads`, `--seed`, `--csv <path>`).

use std::path::PathBuf;

use crate::parallel::default_threads;

/// Parsed flags common to all repro binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Task sets per experimental point.
    pub trials: usize,
    /// Worker threads.
    pub threads: usize,
    /// Base seed (trial `k` uses `seed + k`; figures currently use
    /// `0..trials` directly, the base seed offsets Fig. 5).
    pub seed: u64,
    /// Write the figure's data as CSV here, in addition to stdout.
    pub csv: Option<PathBuf>,
    /// Write the figure's full data as a JSON [`Record`](crate::record::Record).
    pub json: Option<PathBuf>,
}

impl CliArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse(default_trials: usize) -> CliArgs {
        match Self::try_parse(std::env::args().skip(1), default_trials) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <bin> [--trials N] [--threads N] [--seed N] [--csv PATH] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument stream (testable form of
    /// [`CliArgs::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a message describing the offending flag or value.
    pub fn try_parse<I, S>(args: I, default_trials: usize) -> Result<CliArgs, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = CliArgs {
            trials: default_trials,
            threads: default_threads(),
            seed: 0,
            csv: None,
            json: None,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let flag = flag.as_ref().to_owned();
            let mut value = || {
                it.next()
                    .map(|v| v.as_ref().to_owned())
                    .ok_or_else(|| format!("{flag} expects a value"))
            };
            match flag.as_str() {
                "--trials" => {
                    out.trials = value()?
                        .parse()
                        .map_err(|_| "--trials expects a positive integer".to_owned())?;
                    if out.trials == 0 {
                        return Err("--trials must be at least 1".into());
                    }
                }
                "--threads" => {
                    out.threads = value()?
                        .parse()
                        .map_err(|_| "--threads expects a positive integer".to_owned())?;
                    if out.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--seed" => {
                    out.seed = value()?
                        .parse()
                        .map_err(|_| "--seed expects an unsigned integer".to_owned())?;
                }
                "--csv" => out.csv = Some(PathBuf::from(value()?)),
                "--json" => out.json = Some(PathBuf::from(value()?)),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(out)
    }

    /// Writes `csv` to the `--csv` path if one was given, reporting the
    /// destination on stderr.
    pub fn maybe_write_csv(&self, csv: &str) {
        if let Some(path) = &self.csv {
            match std::fs::write(path, csv) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }

    /// Writes a figure as a JSON [`Record`](crate::record::Record) to
    /// the `--json` path if one was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, name: &str, data: &T) {
        if let Some(path) = &self.json {
            let record = crate::record::Record::new(name, self.trials, self.seed, data);
            match record.write_to(path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply() {
        let args = CliArgs::try_parse(Vec::<String>::new(), 25).unwrap();
        assert_eq!(args.trials, 25);
        assert!(args.threads >= 1);
        assert_eq!(args.seed, 0);
        assert_eq!(args.csv, None);
    }

    #[test]
    fn flags_parse() {
        let args = CliArgs::try_parse(
            [
                "--trials",
                "7",
                "--threads",
                "3",
                "--seed",
                "99",
                "--csv",
                "/tmp/x.csv",
                "--json",
                "/tmp/x.json",
            ],
            1,
        )
        .unwrap();
        assert_eq!(args.trials, 7);
        assert_eq!(args.threads, 3);
        assert_eq!(args.seed, 99);
        assert_eq!(args.csv, Some(PathBuf::from("/tmp/x.csv")));
        assert_eq!(args.json, Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn bad_flag_rejected() {
        assert!(CliArgs::try_parse(["--bogus"], 1).is_err());
        assert!(CliArgs::try_parse(["--trials"], 1).is_err());
        assert!(CliArgs::try_parse(["--trials", "zero"], 1).is_err());
        assert!(CliArgs::try_parse(["--trials", "0"], 1).is_err());
    }
}
