//! Campaign telemetry bundle: spans + progress + flight recording.
//!
//! The figure drivers ([`crate::figures`]) accept one
//! [`CampaignTelemetry`] value describing which observers a campaign
//! wants. Everything defaults to off, and the off path is one `None`
//! check per site — the pinned Fig. 5–9 digests and the sweep-bench warm
//! path run with a default (disabled) bundle and stay bit-identical.
//!
//! - **Spans** ([`harvest_obs::span`]): the driver holds the shared
//!   [`SpanCollector`]; each worker gets a buffering
//!   [`SpanSink`] via [`CampaignTelemetry::sink`]. `exp sweep --trace`
//!   exports the collector as Chrome-trace JSON.
//! - **Progress** ([`harvest_obs::progress`]): a shared
//!   [`ProgressReporter`] receives one event per decided cell; the
//!   driver opens the stream, the CLI closes it.
//! - **Flight** ([`harvest_obs::flight`]): when [`FlightOptions`] is
//!   set, each worker pool installs a crash flight recorder and the
//!   campaign writes one dump file per failed cell under
//!   [`FlightOptions::dir`], recorded on the cell's
//!   [`CellFailure::flight`](crate::parallel::CellFailure::flight).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use harvest_obs::flight::FlightDump;
use harvest_obs::progress::{CellDecision, ProgressReporter};
use harvest_obs::span::{SpanCollector, SpanSink};

use crate::cache::fnv1a64;

/// Flight-recorder settings for a campaign.
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Directory receiving `<fnv64-of-key>.flight.jsonl` dump files.
    pub dir: PathBuf,
    /// Ring capacity per worker (see
    /// [`harvest_obs::DEFAULT_FLIGHT_CAPACITY`]).
    pub capacity: usize,
}

impl FlightOptions {
    /// Dumps into `dir` with the default ring capacity.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightOptions {
            dir: dir.into(),
            capacity: harvest_obs::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// The observers one campaign run carries. `Default` is fully disabled.
#[derive(Debug, Clone, Default)]
pub struct CampaignTelemetry {
    /// Span collector for `--trace` (Chrome-trace export).
    pub spans: Option<Arc<SpanCollector>>,
    /// Progress reporter for `--progress` / live stderr heartbeats.
    pub progress: Option<Arc<ProgressReporter>>,
    /// Flight-recorder settings for crash post-mortems.
    pub flight: Option<FlightOptions>,
}

impl CampaignTelemetry {
    /// The disabled bundle (what the uninstrumented entry points pass).
    pub fn off() -> Self {
        CampaignTelemetry::default()
    }

    /// True when no observer is installed at all.
    pub fn is_off(&self) -> bool {
        self.spans.is_none() && self.progress.is_none() && self.flight.is_none()
    }

    /// A span sink on track `tid` (worker index + 1; 0 is the driver),
    /// when spans are on.
    pub fn sink(&self, tid: u32) -> Option<SpanSink> {
        self.spans.as_ref().map(|c| c.sink(tid))
    }

    /// Report one decided cell, when progress is on.
    pub fn cell(&self, decision: CellDecision, key: &str, worker: usize) {
        if let Some(p) = &self.progress {
            p.cell(decision, key, worker);
        }
    }
}

/// Writes one flight dump under `dir` as
/// `<fnv1a64(key):016x>.flight.jsonl`, stamping `key` into the dump's
/// header. Returns the file path.
///
/// # Errors
///
/// Returns the underlying IO error when the directory cannot be created
/// or the file cannot be written.
pub fn write_flight_dump(dir: &Path, key: &str, mut dump: FlightDump) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    dump.key = key.to_owned();
    let path = dir.join(format!("{:016x}.flight.jsonl", fnv1a64(key.as_bytes())));
    let file = std::fs::File::create(&path)?;
    dump.write_jsonl(io::BufWriter::new(file))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_obs::FlightRecorder;

    #[test]
    fn default_bundle_is_off() {
        let t = CampaignTelemetry::default();
        assert!(t.is_off());
        assert!(t.sink(1).is_none());
        // cell() on a disabled bundle is a no-op, not a panic.
        t.cell(CellDecision::Hit, "k", 0);
    }

    #[test]
    fn flight_dump_file_round_trips_with_key() {
        let dir = std::env::temp_dir().join(format!("harvest-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rec = FlightRecorder::new(8);
        rec.mark("v1|s|edf|3");
        rec.record(1.0, "released", "job 0".into());
        rec.capture("watchdog-event-budget", 9);
        let dump = rec.take_dumps().remove(0);

        let path = write_flight_dump(&dir, "v1|s|edf|3", dump).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".flight.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back = FlightDump::from_jsonl(&text).unwrap();
        assert_eq!(back.key, "v1|s|edf|3");
        assert_eq!(back.reason, "watchdog-event-budget");
        assert_eq!(back.events.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
