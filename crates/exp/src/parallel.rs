//! Deterministic sharded parallel-map over trial seeds.
//!
//! Work distribution is **per-worker shards with chunked work-stealing**:
//! the input is split into `threads` contiguous shards, each with its own
//! atomic cursor, and worker `w` drains shard `w` in chunks of several
//! items before rotating round-robin onto the other shards to steal what
//! remains. Compared to the previous one-`fetch_add`-per-item shared
//! counter this keeps a worker on one contiguous region (cache-friendly
//! for prefab-derived inputs), amortizes the atomic over a chunk — which
//! matters when the cells are small-grain sweep trials — and still
//! tolerates the heavily skewed per-trial runtimes of scarce-energy
//! cells: a worker whose shard drains early steals chunks from the slow
//! ones instead of idling. Results are kept in private `(index, result)`
//! buffers and stitched back in input order after the scope joins, so
//! output order never depends on scheduling.
//!
//! Workers rendezvous at a [`Barrier`] between building their state and
//! claiming their first chunk. Without it the spawn order is a head
//! start: worker 0 begins stealing the later workers' shards before
//! those threads exist, and on small-grain sweeps one worker ends up
//! executing nearly every item while the rest spin up into exhausted
//! cursors (the PR 6 bench recorded 244 of 244 items on worker 0). The
//! barrier costs one wait per worker per map and restores the intended
//! near-even spread.
//!
//! The `*_with` variants additionally thread a per-worker state value
//! (typically a pooled `harvest_core::RunContext`) through every call,
//! so a worker executes its whole share of trials against one reusable
//! simulation context.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Per-worker accounting from the `*_observed` map variants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Items this worker executed.
    pub items: u64,
    /// Chunk claims this worker made (its own shard and stolen ones).
    pub claims: u64,
    /// Chunk claims satisfied from another worker's shard.
    pub steals: u64,
    /// Wall-clock nanoseconds spent inside the mapped function
    /// (measured per claimed chunk, so a few items share one clock pair).
    pub busy_ns: u64,
    /// Wall-clock nanoseconds from worker start to worker exit.
    pub wall_ns: u64,
}

impl WorkerStats {
    /// Fraction of the worker's lifetime spent in the mapped function —
    /// low utilization across workers means spawn/steal overhead or a
    /// starved tail, not useful parallelism.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }
}

/// What one worker thread hands back: its (index, result) buffer, its
/// accounting, and its per-worker state.
type WorkerBuffer<R, W> = (Vec<(usize, R)>, WorkerStats, W);

/// Shard `s` of `n` items over `t` workers: the half-open index range
/// `[s*n/t, (s+1)*n/t)` (balanced to within one item).
fn shard_bounds(s: usize, n: usize, t: usize) -> (usize, usize) {
    (s * n / t, (s + 1) * n / t)
}

/// Chunk size for cursor claims: large enough to amortize the atomic on
/// small-grain cells, small enough that stealing can still rebalance a
/// skewed tail.
fn chunk_size(n: usize, t: usize) -> usize {
    (n / (t * 32)).clamp(1, 64)
}

/// The sharded core all public variants compile down to. `observe`
/// gates the per-chunk clock reads so the plain sweep path pays none.
fn run_sharded<T, R, W, N, F>(
    items: Vec<T>,
    threads: usize,
    init: N,
    f: F,
    observe: bool,
) -> (Vec<R>, Vec<WorkerStats>, Vec<W>)
where
    T: Clone + Send + Sync,
    R: Send,
    W: Send,
    N: Fn(usize) -> W + Sync,
    F: Fn(&mut W, T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if items.is_empty() {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let n = items.len();
    let threads = threads.min(n);
    if threads == 1 {
        let start = observe.then(Instant::now);
        let mut state = init(0);
        let out: Vec<R> = items.into_iter().map(|x| f(&mut state, x)).collect();
        let mut stats = WorkerStats {
            items: out.len() as u64,
            claims: 1,
            ..WorkerStats::default()
        };
        if let Some(start) = start {
            let wall = start.elapsed().as_nanos() as u64;
            stats.busy_ns = wall;
            stats.wall_ns = wall;
        }
        return (out, vec![stats], vec![state]);
    }

    let chunk = chunk_size(n, threads);
    let cursors: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let start_line = Barrier::new(threads);
    let (f, init, items_ref, cursors_ref, start_line) =
        (&f, &init, &items[..], &cursors[..], &start_line);

    let buffers: Vec<WorkerBuffer<R, W>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let worker_start = observe.then(Instant::now);
                    let mut state = {
                        // A panicking `init` must still release the
                        // rendezvous, or the sibling workers deadlock in
                        // `wait` while this thread unwinds.
                        struct WaitOnDrop<'a>(&'a Barrier);
                        impl Drop for WaitOnDrop<'_> {
                            fn drop(&mut self) {
                                self.0.wait();
                            }
                        }
                        let _release = WaitOnDrop(start_line);
                        init(w)
                    };
                    let mut stats = WorkerStats::default();
                    let mut out = Vec::with_capacity(n / threads + 1);
                    for step in 0..threads {
                        let shard = (w + step) % threads;
                        let (lo, hi) = shard_bounds(shard, n, threads);
                        loop {
                            let off = cursors_ref[shard].fetch_add(chunk, Ordering::Relaxed);
                            let begin = lo.saturating_add(off);
                            if begin >= hi {
                                break;
                            }
                            let end = (begin + chunk).min(hi);
                            stats.claims += 1;
                            if step > 0 {
                                stats.steals += 1;
                            }
                            let t0 = observe.then(Instant::now);
                            for (off, item) in items_ref[begin..end].iter().enumerate() {
                                out.push((begin + off, f(&mut state, item.clone())));
                            }
                            stats.items += (end - begin) as u64;
                            if let Some(t0) = t0 {
                                stats.busy_ns += t0.elapsed().as_nanos() as u64;
                            }
                        }
                    }
                    if let Some(start) = worker_start {
                        stats.wall_ns = start.elapsed().as_nanos() as u64;
                    }
                    (out, stats, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut stats = Vec::with_capacity(buffers.len());
    let mut states = Vec::with_capacity(buffers.len());
    for (buffer, worker, state) in buffers {
        stats.push(worker);
        states.push(state);
        for (idx, result) in buffer {
            debug_assert!(slots[idx].is_none(), "index claimed twice");
            slots[idx] = Some(result);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect();
    (results, stats, states)
}

/// Applies `f` to every item, fanning work out over `threads` OS threads
/// while preserving input order in the output.
///
/// Results are deterministic: the mapping from item to result does not
/// depend on scheduling, only the wall-clock does. Items are read
/// through a shared slice and cloned on claim (`T: Clone + Sync`) —
/// sweep items are small `Copy` tuples, so the clone is free and no
/// per-item lock is needed to transfer ownership.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// let squares = harvest_exp::parallel::parallel_map(0..8u64, 4, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<I, T, R, F>(items: I, threads: usize, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let (out, _, _) = run_sharded(items, threads, |_| (), |(), x| f(x), false);
    out
}

/// [`parallel_map`] with a per-worker state value threaded through every
/// call: `init(w)` builds worker `w`'s state once, and each mapped item
/// gets `&mut` access to the state of whichever worker executes it.
///
/// This is the pooled-sweep entry point: `init` builds one
/// `harvest_core::RunContext` per worker, and every trial in that
/// worker's share reuses its queue and registry allocations. The mapping
/// from item to result must not depend on the worker state for the
/// output to stay deterministic (pooled contexts satisfy this: runs in
/// a pooled context are bit-identical to fresh runs).
///
/// Returns the results in input order plus the final worker states (one
/// per spawned worker), so callers can aggregate e.g. pool high-water
/// marks. `init` is not called when `items` is empty.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
pub fn parallel_map_with<I, T, R, W, N, F>(
    items: I,
    threads: usize,
    init: N,
    f: F,
) -> (Vec<R>, Vec<W>)
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    W: Send,
    N: Fn(usize) -> W + Sync,
    F: Fn(&mut W, T) -> R + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let (out, _, states) = run_sharded(items, threads, init, f, false);
    (out, states)
}

/// [`parallel_map`] plus per-worker accounting: how many items each
/// worker executed, how many chunks it claimed and stole, and how its
/// wall-clock split between mapped work and overhead. A separate entry
/// point (rather than a flag on [`parallel_map`]) so the sweep hot path
/// never pays the chunk clock reads.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
pub fn parallel_map_observed<I, T, R, F>(
    items: I,
    threads: usize,
    f: F,
) -> (Vec<R>, Vec<WorkerStats>)
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let (out, stats, _) = run_sharded(items, threads, |_| (), |(), x| f(x), true);
    (out, stats)
}

/// [`parallel_map_with`] plus the [`WorkerStats`] of
/// [`parallel_map_observed`] — the figure drivers' pooled entry point
/// when a run artifact is being recorded.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
pub fn parallel_map_with_observed<I, T, R, W, N, F>(
    items: I,
    threads: usize,
    init: N,
    f: F,
) -> (Vec<R>, Vec<WorkerStats>, Vec<W>)
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    W: Send,
    N: Fn(usize) -> W + Sync,
    F: Fn(&mut W, T) -> R + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    run_sharded(items, threads, init, f, true)
}

/// Why one quarantined cell failed (see [`parallel_map_quarantined`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    /// The panic payload or error rendering.
    pub message: String,
    /// `true` when the mapped function panicked; `false` when it
    /// returned an error.
    pub panicked: bool,
    /// Index of the worker that executed the cell.
    pub worker: usize,
    /// Path of the flight-recorder dump written for this cell, when
    /// flight recording was on. `None` on older manifest/store rows
    /// (the vendored serde reads a missing `Option` field as `None`,
    /// so pre-telemetry records stay readable).
    pub flight: Option<String>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// [`parallel_map_with`] in quarantining mode: the mapped function is
/// fallible, and both its errors **and its panics** are caught per
/// item and returned as [`CellFailure`]s in place of results, so one
/// poisoned sweep cell cannot take down a whole campaign. Input order
/// is preserved; every other cell still executes.
///
/// The worker state must tolerate a mid-item panic — pooled
/// [`crate::scenario::SimPool`] contexts do (a panicked run's queues
/// are rebuilt on the next use), which is why they are the intended
/// state here. Panic payloads still go through the process panic hook
/// (so backtraces remain available under `RUST_BACKTRACE`); only the
/// unwind is contained.
///
/// # Panics
///
/// Panics if `threads == 0`. Panics from `f` are quarantined, not
/// propagated.
pub fn parallel_map_quarantined<I, T, R, E, W, N, F>(
    items: I,
    threads: usize,
    init: N,
    f: F,
) -> (Vec<Result<R, CellFailure>>, Vec<W>)
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    E: std::fmt::Display,
    W: Send,
    N: Fn(usize) -> W + Sync,
    F: Fn(&mut W, T) -> Result<R, E> + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let (out, _, states) = run_sharded(
        items,
        threads,
        |w| (w, init(w)),
        |(w, state), x| {
            let worker = *w;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(state, x))) {
                Ok(Ok(r)) => Ok(r),
                Ok(Err(e)) => Err(CellFailure {
                    message: e.to_string(),
                    panicked: false,
                    worker,
                    flight: None,
                }),
                Err(payload) => Err(CellFailure {
                    message: panic_message(payload.as_ref()),
                    panicked: true,
                    worker,
                    flight: None,
                }),
            }
        },
        false,
    );
    (out, states.into_iter().map(|(_, s)| s).collect())
}

/// A sensible default worker count.
///
/// Resolution order:
/// 1. The `HARVEST_THREADS` environment variable, when set to a positive
///    integer — an explicit override for benchmarking or oversubscribed
///    machines. The override is taken verbatim (no cap). A value that
///    is zero or fails to parse is **ignored with a one-line warning on
///    stderr** (printed once per process) rather than silently falling
///    through.
/// 2. Otherwise the machine's available parallelism — or 4 when it
///    cannot be determined — **capped at 16**: the experiment runs are
///    short, and past 16 workers the spawn and synchronization overhead
///    outweighs the extra cores. The cap applies only to this fallback,
///    never to an explicit override.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("HARVEST_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring HARVEST_THREADS={raw:?} \
                         (expected a positive integer); using available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_env;
    use std::time::Duration;

    #[test]
    fn preserves_order() {
        let out = parallel_map(0..100u32, 7, |x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(0..3u8, 16, |x| x * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn skewed_runtimes_keep_input_order() {
        // Early items are slow, late items fast: under static chunking the
        // first worker would finish last; chunk stealing must still place
        // every result at its input index.
        let out = parallel_map(0..40u64, 4, |x| {
            if x < 4 {
                std::thread::sleep(Duration::from_millis(20));
            } else if x % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            x * 3
        });
        assert_eq!(out, (0..40u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nondeterministic_claim_order_still_deterministic_output() {
        let a = parallel_map(0..500u64, 8, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let b = parallel_map(0..500u64, 3, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let serial: Vec<u64> = (0..500u64)
            .map(|x| x.wrapping_mul(0x9E37_79B9).rotate_left(7))
            .collect();
        assert_eq!(a, serial);
        assert_eq!(b, serial);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(0..64u64, 4, |x| {
                if x == 13 {
                    panic!("unlucky trial");
                }
                x
            })
        });
        assert!(caught.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn borrowing_shared_state_works() {
        // Closures may borrow prefab-style shared context.
        let shared: Vec<u64> = (0..10).map(|i| i * 100).collect();
        let out = parallel_map(0..10usize, 4, |i| shared[i] + 1);
        assert_eq!(out, (0..10u64).map(|i| i * 100 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn observed_map_matches_plain_and_accounts_every_item() {
        let (out, stats) = parallel_map_observed(0..50u64, 4, |x| x * 2);
        assert_eq!(out, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), 50);
        for s in &stats {
            assert!(s.wall_ns >= s.busy_ns || s.items == 0);
            assert!(s.utilization() >= 0.0 && s.utilization() <= 1.0);
            assert!(s.claims >= s.steals);
        }
    }

    #[test]
    fn observed_map_single_thread_and_empty() {
        let (out, stats) = parallel_map_observed(vec![1u8, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].items, 3);
        let (out, stats) = parallel_map_observed(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty() && stats.is_empty());
    }

    #[test]
    fn with_state_threads_one_state_per_worker() {
        // Each worker counts the items it executed into its own state;
        // the final states must account for every item exactly once and
        // the output must stay in input order.
        let (out, states) = parallel_map_with(
            0..200u64,
            4,
            |w| (w, 0u64),
            |state, x| {
                state.1 += 1;
                x + 1
            },
        );
        assert_eq!(out, (1..=200).collect::<Vec<_>>());
        assert_eq!(states.len(), 4);
        assert_eq!(
            states.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(states.iter().map(|s| s.1).sum::<u64>(), 200);
    }

    #[test]
    fn with_state_single_thread_and_empty() {
        let (out, states) = parallel_map_with(
            0..5u32,
            1,
            |_| 0u32,
            |acc, x| {
                *acc += x;
                x
            },
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(states, vec![10]);
        let (out, states): (Vec<u32>, Vec<u32>) =
            parallel_map_with(Vec::<u32>::new(), 4, |_| 0u32, |_, x| x);
        assert!(
            out.is_empty() && states.is_empty(),
            "init must not run on empty input"
        );
    }

    #[test]
    fn with_observed_returns_stats_and_states() {
        let (out, stats, states) = parallel_map_with_observed(
            0..64u64,
            4,
            |_| 0u64,
            |acc, x| {
                *acc += 1;
                x
            },
        );
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), 64);
        assert_eq!(states.iter().sum::<u64>(), 64);
    }

    #[test]
    fn quarantine_catches_panics_and_errors_in_place() {
        // Suppress the default hook's backtrace spam for the expected
        // panics; the hook is process-global, so restore it after.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (out, states) = parallel_map_quarantined(
            0..32u64,
            4,
            |_| 0u64,
            |count, x| {
                *count += 1;
                if x == 5 {
                    panic!("poisoned cell {x}");
                }
                if x == 9 {
                    return Err(format!("typed failure at {x}"));
                }
                Ok(x * 2)
            },
        );
        std::panic::set_hook(hook);
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            match i as u64 {
                5 => {
                    let f = r.as_ref().unwrap_err();
                    assert!(f.panicked);
                    assert_eq!(f.message, "poisoned cell 5");
                    assert!(f.worker < 4);
                }
                9 => {
                    let f = r.as_ref().unwrap_err();
                    assert!(!f.panicked);
                    assert_eq!(f.message, "typed failure at 9");
                }
                x => assert_eq!(*r.as_ref().unwrap(), x * 2),
            }
        }
        // Every cell — including the poisoned ones — was executed once.
        assert_eq!(states.iter().sum::<u64>(), 32);
    }

    #[test]
    fn quarantine_empty_input() {
        let (out, states) =
            parallel_map_quarantined(Vec::<u32>::new(), 4, |_| (), |(), x| Ok::<_, String>(x));
        assert!(out.is_empty() && states.is_empty());
    }

    #[test]
    fn every_worker_gets_items_on_uniform_grain() {
        // Uniform per-item cost, items ≫ threads: with the start-line
        // barrier no worker can drain the others' shards before they
        // begin, so every worker must execute at least one item (the
        // pre-barrier behaviour put all 64 on worker 0).
        let (out, stats) = parallel_map_observed(0..64u64, 4, |x| {
            std::thread::sleep(Duration::from_millis(2));
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), 64);
        for (w, s) in stats.iter().enumerate() {
            assert!(s.items > 0, "worker {w} executed nothing: {stats:?}");
        }
    }

    #[test]
    fn init_panic_releases_the_start_line() {
        // A worker whose init panics must not strand the others at the
        // barrier: the map has to unwind promptly, not hang.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| {
            parallel_map_with(
                0..64u64,
                4,
                |w| {
                    if w == 2 {
                        panic!("poisoned init");
                    }
                    0u64
                },
                |_, x| x,
            )
        });
        std::panic::set_hook(hook);
        assert!(caught.is_err(), "the init panic must reach the caller");
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for n in [1usize, 2, 7, 64, 1000] {
            for t in [1usize, 2, 3, 8, 16] {
                let mut covered = 0;
                for s in 0..t {
                    let (lo, hi) = shard_bounds(s, n, t);
                    assert_eq!(lo, covered, "shards must tile [0, n)");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn harvest_threads_override() {
        // Env mutation is process-global: serialize through the shared
        // env lock so no concurrent test observes a half-set variable.
        with_env(&[("HARVEST_THREADS", Some("3"))], || {
            assert_eq!(default_threads(), 3);
        });
        with_env(&[("HARVEST_THREADS", Some("not a number"))], || {
            let n = default_threads();
            assert!((1..=16).contains(&n), "garbage must fall back, got {n}");
        });
        with_env(&[("HARVEST_THREADS", Some("0"))], || {
            let n = default_threads();
            assert!((1..=16).contains(&n), "zero must fall back, got {n}");
        });
        with_env(&[("HARVEST_THREADS", None)], || {
            assert!(default_threads() >= 1);
        });
    }
}
