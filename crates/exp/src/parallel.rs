//! Tiny deterministic parallel-map over trial seeds.
//!
//! Work distribution is an atomic-counter work-stealing loop rather than
//! fixed equal chunks: trial runtimes are heavily skewed (scarce-energy
//! trials simulate far more scheduler events), so static chunking leaves
//! threads idle while one worker drains a slow chunk. Each worker claims
//! the next unclaimed index with a `fetch_add` and keeps its results in
//! a private `(index, result)` buffer; the buffers are stitched back in
//! input order after the scope joins. No locks anywhere on the work
//! path — the single atomic counter is the only shared mutable state.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, fanning work out over `threads` OS threads
/// while preserving input order in the output.
///
/// Results are deterministic: the mapping from item to result does not
/// depend on scheduling, only the wall-clock does. Workers pull items
/// one at a time from a shared atomic counter, so skewed per-item
/// runtimes do not serialize behind a slow chunk. Items are read
/// through a shared slice and cloned on claim (`T: Clone + Sync`) —
/// sweep items are small `Copy` tuples, so the clone is free and no
/// per-item lock is needed to transfer ownership.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// let squares = harvest_exp::parallel::parallel_map(0..8u64, 4, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<I, T, R, F>(items: I, threads: usize, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let items: Vec<T> = items.into_iter().collect();
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len());
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (f, items_ref, next_ref) = (&f, &items[..], &next);

    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    // Pre-size for the fair share; stealing may tilt it.
                    let mut out = Vec::with_capacity(items_ref.len() / threads + 1);
                    loop {
                        let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                        if idx >= items_ref.len() {
                            break;
                        }
                        out.push((idx, f(items_ref[idx].clone())));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (idx, result) in buffers.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "index claimed twice");
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Per-worker accounting from [`parallel_map_observed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Items this worker claimed from the shared counter.
    pub items: u64,
    /// Wall-clock nanoseconds spent inside the mapped function.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds from worker start to worker exit.
    pub wall_ns: u64,
}

impl WorkerStats {
    /// Fraction of the worker's lifetime spent in the mapped function —
    /// low utilization across workers means spawn/steal overhead or a
    /// starved tail, not useful parallelism.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }
}

/// [`parallel_map`] plus per-worker accounting: how many items each
/// worker claimed and how its wall-clock split between mapped work and
/// overhead. A separate entry point (rather than a flag on
/// [`parallel_map`]) so the sweep hot path never pays the two clock
/// reads per item.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
pub fn parallel_map_observed<I, T, R, F>(
    items: I,
    threads: usize,
    f: F,
) -> (Vec<R>, Vec<WorkerStats>)
where
    I: IntoIterator<Item = T>,
    T: Clone + Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let items: Vec<T> = items.into_iter().collect();
    if items.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let threads = threads.min(items.len());
    if threads == 1 {
        let start = std::time::Instant::now();
        let out: Vec<R> = items.into_iter().map(&f).collect();
        let wall = start.elapsed().as_nanos() as u64;
        let stats = WorkerStats {
            items: out.len() as u64,
            busy_ns: wall,
            wall_ns: wall,
        };
        return (out, vec![stats]);
    }

    let next = AtomicUsize::new(0);
    let (f, items_ref, next_ref) = (&f, &items[..], &next);

    let buffers: Vec<(Vec<(usize, R)>, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let worker_start = std::time::Instant::now();
                    let mut stats = WorkerStats::default();
                    let mut out = Vec::with_capacity(items_ref.len() / threads + 1);
                    loop {
                        let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                        if idx >= items_ref.len() {
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        out.push((idx, f(items_ref[idx].clone())));
                        stats.busy_ns += t0.elapsed().as_nanos() as u64;
                        stats.items += 1;
                    }
                    stats.wall_ns = worker_start.elapsed().as_nanos() as u64;
                    (out, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut stats = Vec::with_capacity(buffers.len());
    for (buffer, worker) in buffers {
        stats.push(worker);
        for (idx, result) in buffer {
            debug_assert!(slots[idx].is_none(), "index claimed twice");
            slots[idx] = Some(result);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect();
    (results, stats)
}

/// A sensible default worker count.
///
/// Resolution order:
/// 1. The `HARVEST_THREADS` environment variable, when set to a positive
///    integer — an explicit override for benchmarking or oversubscribed
///    machines.
/// 2. Otherwise the machine's available parallelism, **capped at 16**:
///    the experiment runs are short, and past 16 workers the spawn and
///    synchronization overhead outweighs the extra cores.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("HARVEST_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn preserves_order() {
        let out = parallel_map(0..100u32, 7, |x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(0..3u8, 16, |x| x * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn skewed_runtimes_keep_input_order() {
        // Early items are slow, late items fast: under static chunking the
        // first worker would finish last; work stealing must still place
        // every result at its input index.
        let out = parallel_map(0..40u64, 4, |x| {
            if x < 4 {
                std::thread::sleep(Duration::from_millis(20));
            } else if x % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            x * 3
        });
        assert_eq!(out, (0..40u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nondeterministic_claim_order_still_deterministic_output() {
        let a = parallel_map(0..500u64, 8, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let b = parallel_map(0..500u64, 3, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let serial: Vec<u64> = (0..500u64)
            .map(|x| x.wrapping_mul(0x9E37_79B9).rotate_left(7))
            .collect();
        assert_eq!(a, serial);
        assert_eq!(b, serial);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(0..64u64, 4, |x| {
                if x == 13 {
                    panic!("unlucky trial");
                }
                x
            })
        });
        assert!(caught.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn borrowing_shared_state_works() {
        // Closures may borrow prefab-style shared context.
        let shared: Vec<u64> = (0..10).map(|i| i * 100).collect();
        let out = parallel_map(0..10usize, 4, |i| shared[i] + 1);
        assert_eq!(out, (0..10u64).map(|i| i * 100 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn observed_map_matches_plain_and_accounts_every_item() {
        let (out, stats) = parallel_map_observed(0..50u64, 4, |x| x * 2);
        assert_eq!(out, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), 50);
        for s in &stats {
            assert!(s.wall_ns >= s.busy_ns || s.items == 0);
            assert!(s.utilization() >= 0.0 && s.utilization() <= 1.0);
        }
    }

    #[test]
    fn observed_map_single_thread_and_empty() {
        let (out, stats) = parallel_map_observed(vec![1u8, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].items, 3);
        let (out, stats) = parallel_map_observed(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty() && stats.is_empty());
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn harvest_threads_override() {
        // Env mutation is process-global; run both checks in one test to
        // avoid racing other tests on the variable.
        std::env::set_var("HARVEST_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("HARVEST_THREADS", "not a number");
        assert!(default_threads() >= 1);
        std::env::remove_var("HARVEST_THREADS");
        assert!(default_threads() >= 1);
    }
}
