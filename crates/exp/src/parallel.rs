//! Tiny deterministic parallel-map over trial seeds.

/// Applies `f` to every item, fanning work out over `threads` OS threads
/// while preserving input order in the output.
///
/// Results are deterministic: the mapping from item to result does not
/// depend on scheduling, only the wall-clock does.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// let squares = harvest_exp::parallel::parallel_map(0..8u64, 4, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<I, T, R, F>(items: I, threads: usize, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let items: Vec<T> = items.into_iter().collect();
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len());
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let chunk = n.div_euclid(threads) + usize::from(n % threads != 0);
    let mut chunks: Vec<&mut [Option<R>]> = Vec::new();
    let mut rest: &mut [Option<R>] = &mut slots;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push(head);
        rest = tail;
    }
    let mut work_chunks: Vec<Vec<(usize, T)>> = Vec::new();
    let mut it = work.into_iter();
    loop {
        let batch: Vec<(usize, T)> = it.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        work_chunks.push(batch);
    }
    let f = &f;
    crossbeam::thread::scope(|scope| {
        for (out, batch) in chunks.into_iter().zip(work_chunks) {
            scope.spawn(move |_| {
                for (slot, (_, item)) in out.iter_mut().zip(batch) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker thread panicked");
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

/// A sensible default worker count: the machine's parallelism, capped at
/// 16 (the experiment runs are short; more threads only add overhead).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get()).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(0..100u32, 7, |x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(0..3u8, 16, |x| x * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
