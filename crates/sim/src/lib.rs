//! # harvest-sim — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the `harvest-rt` workspace: everything needed to
//! run exact, reproducible simulations of energy-harvesting real-time
//! systems.
//!
//! * [`time`] — fixed-point simulation time ([`SimTime`]/[`SimDuration`],
//!   10⁶ ticks per time unit) so event ordering is exact.
//! * [`piecewise`] — piecewise-constant functions with closed-form
//!   integrals and accumulation-crossing solves; harvest-power profiles
//!   live here.
//! * [`event`] — a stable, cancellable event queue.
//! * [`engine`] — a minimal generic DES engine (`Model` + `Engine`).
//! * [`trace`] — pluggable trace sinks.
//! * [`stats`] — Welford statistics, sampled time series, histograms.
//!
//! # Examples
//!
//! Integrate a harvest profile exactly:
//!
//! ```
//! use harvest_sim::piecewise::{Extension, PiecewiseConstant};
//! use harvest_sim::time::{SimDuration, SimTime};
//!
//! let profile = PiecewiseConstant::from_samples(
//!     SimTime::ZERO,
//!     SimDuration::from_whole_units(1),
//!     vec![0.5, 2.0, 1.5],
//!     Extension::Hold,
//! )?;
//! let harvested = profile.integrate(SimTime::ZERO, SimTime::from_whole_units(3));
//! assert_eq!(harvested, 4.0);
//! # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod event;
pub mod piecewise;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, Model, RunOutcome, Scheduler, Watchdog, WatchdogKind};
pub use event::{EventId, EventQueue, QueueStats, ReleaseEntry, ReleaseTape};
pub use piecewise::{CursorStats, Extension, PiecewiseConstant, PiecewiseError, Segment};
pub use stats::{Histogram, RunningStats, SampledSeries};
pub use time::{SimDuration, SimTime, TICKS_PER_UNIT};
pub use trace::{CountingSink, FnSink, NullSink, RecordKind, Stamped, TraceSink, VecSink};
