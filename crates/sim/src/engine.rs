//! A minimal generic discrete-event engine.
//!
//! [`Engine`] owns the clock and the event queue and repeatedly hands the
//! earliest event to a user-supplied [`Model`]. The model reacts by
//! scheduling further events through the [`Scheduler`] context. The
//! closed-loop harvesting simulator in `harvest-core` is built on this.

use crate::event::{EventId, EventQueue, QueueStats};
use crate::time::SimTime;
use harvest_obs::profile::PhaseProfiler;
use serde::{Deserialize, Serialize};

/// Phase name under which [`Engine::run_until`] accounts event
/// dispatch (the full `Model::handle` call) when profiling is enabled.
pub const PHASE_DISPATCH: &str = "engine.dispatch";

/// Scheduling context handed to [`Model::handle`].
///
/// Wraps the event queue so the model can schedule and cancel events but
/// cannot pop them or rewind the clock.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
    stop: &'a mut bool,
}

impl<E: Copy> Scheduler<'_, E> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.schedule(at, payload)
    }

    /// Cancels a pending event; returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Claims the next queue sequence number without scheduling — for
    /// models that keep a side stream of pre-ordered events (see
    /// [`Model::side_peek`]) and need those events keyed exactly as if
    /// they had been scheduled here.
    pub fn alloc_seq(&mut self) -> u32 {
        self.queue.alloc_seq()
    }

    /// Requests the engine to stop after the current event is handled.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// A simulation model driven by an [`Engine`].
pub trait Model {
    /// Event payload type. `Copy` because the queue stores payloads in
    /// its slab and copies them out as events fire.
    type Event: Copy;

    /// Handles one event at time `now`, scheduling follow-ups via `ctx`.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut Scheduler<'_, Self::Event>);

    /// `(time, seq)` key of the model's next *side-stream* event, if any.
    ///
    /// A model may keep part of its event traffic outside the queue — a
    /// precomputed tape consumed by a cursor, say. The engine merges the
    /// side stream with the queue by `(time, seq)` each iteration and
    /// dispatches whichever is earlier, so elided events still fire in
    /// exactly the order they would have fired from the queue, provided
    /// their sequence numbers were claimed via [`Scheduler::alloc_seq`]
    /// (or [`Engine::alloc_seq`]) at the points the heap-driven model
    /// would have scheduled them. The default (no side stream) keeps the
    /// run loop as cheap as before: one always-`None` branch.
    #[inline]
    fn side_peek(&self) -> Option<(SimTime, u32)> {
        None
    }

    /// Pops the side-stream head whose key [`Model::side_peek`] just
    /// returned. Only called when `side_peek` returned `Some` and its
    /// key was the merged minimum.
    fn side_pop(&mut self) -> Self::Event {
        unreachable!("model reported no side-stream event")
    }
}

/// Outcome of [`Engine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Drained {
        /// Time of the last handled event.
        last_event: Option<SimTime>,
    },
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The model requested a stop.
    Stopped {
        /// Time at which the stop was requested.
        at: SimTime,
    },
    /// A [`Watchdog`] budget was exhausted and the run was aborted.
    WatchdogFired {
        /// Time of the event that tripped the budget.
        at: SimTime,
        /// Total events handled when the watchdog fired.
        events: u64,
        /// Which budget tripped.
        kind: WatchdogKind,
    },
}

/// Which [`Watchdog`] budget aborted a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WatchdogKind {
    /// The lifetime event budget ([`Watchdog::max_events`]) ran out.
    EventBudget,
    /// Too many consecutive events fired at one instant without the
    /// clock advancing ([`Watchdog::max_events_at_instant`]).
    NoProgress,
}

/// Abort budgets for [`Engine::run_until`] — the harness's defense
/// against runaway or livelocked models.
///
/// Both budgets are optional; an unset watchdog (the default) keeps the
/// run loop exactly as cheap as before. `max_events` bounds the total
/// events a trial may handle; `max_events_at_instant` bounds how many
/// events may fire back-to-back at a single timestamp, catching models
/// that reschedule themselves at `now` forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Watchdog {
    /// Abort once this many events have been handled in total.
    pub max_events: Option<u64>,
    /// Abort once this many consecutive events fire without the clock
    /// advancing.
    pub max_events_at_instant: Option<u64>,
}

impl Watchdog {
    /// A watchdog with only a lifetime event budget.
    pub fn with_max_events(max_events: u64) -> Self {
        Watchdog {
            max_events: Some(max_events),
            max_events_at_instant: None,
        }
    }

    /// `true` when no budget is configured.
    pub fn is_empty(&self) -> bool {
        self.max_events.is_none() && self.max_events_at_instant.is_none()
    }
}

/// Discrete-event engine binding a clock, an [`EventQueue`], and a
/// [`Model`].
///
/// # Examples
///
/// ```
/// use harvest_sim::engine::{Engine, Model, RunOutcome, Scheduler};
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// /// Counts down, rescheduling itself every time unit.
/// struct Countdown(u32);
///
/// impl Model for Countdown {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), ctx: &mut Scheduler<'_, ()>) {
///         self.0 -= 1;
///         if self.0 > 0 {
///             ctx.schedule(now + SimDuration::from_whole_units(1), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Countdown(3));
/// engine.schedule(SimTime::ZERO, ());
/// let outcome = engine.run_until(SimTime::from_whole_units(100));
/// assert_eq!(outcome, RunOutcome::Drained { last_event: Some(SimTime::from_whole_units(2)) });
/// assert_eq!(engine.model().0, 0);
/// ```
#[derive(Debug)]
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    handled: u64,
    /// Time of the most recently dispatched event, queue or side stream.
    /// (`queue.current_time()` alone cannot answer this once a model
    /// elides events into a side stream.)
    last_handled: Option<SimTime>,
    /// Scoped phase timers; `None` (the default) keeps the run loop at
    /// one branch per event and zero clock reads.
    profiler: Option<Box<PhaseProfiler>>,
    watchdog: Option<Watchdog>,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new(model: M) -> Self {
        Engine::with_queue(model, EventQueue::new())
    }

    /// Creates an engine at time zero around a caller-supplied queue —
    /// the pooling entry point: a [`reset`](EventQueue::reset) queue
    /// keeps its slab and bucket allocations from previous runs, and a
    /// run on it is bit-identical to one on a fresh queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue still holds pending events or has already
    /// advanced its clock; pass a fresh or freshly-reset queue.
    pub fn with_queue(model: M, queue: EventQueue<M::Event>) -> Self {
        assert!(
            queue.is_empty() && queue.current_time().is_none(),
            "engine requires a fresh or reset event queue"
        );
        Engine {
            model,
            queue,
            now: SimTime::ZERO,
            handled: 0,
            last_handled: None,
            profiler: None,
            watchdog: None,
        }
    }

    /// Arms (or with `None`, disarms) the run-loop watchdog.
    pub fn set_watchdog(&mut self, watchdog: Option<Watchdog>) {
        self.watchdog = watchdog.filter(|w| !w.is_empty());
    }

    /// Turns on per-event phase timing: every `Model::handle` call is
    /// wall-clock timed under [`PHASE_DISPATCH`]. Off by default.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::default());
        }
    }

    /// The accumulated phase timings, if profiling was enabled.
    pub fn profiler(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_deref()
    }

    /// Lifetime operation counts of the underlying event queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Schedules an initial event (usable before and between runs).
    pub fn schedule(&mut self, at: SimTime, payload: M::Event) -> EventId {
        self.queue.schedule(at, payload)
    }

    /// Claims the next queue sequence number without scheduling — the
    /// seeding-time counterpart of [`Scheduler::alloc_seq`], for keying
    /// side-stream events (see [`Model::side_peek`]) before the run
    /// starts.
    pub fn alloc_seq(&mut self) -> u32 {
        self.queue.alloc_seq()
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.handled
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Consumes the engine, returning the model and the event queue so
    /// a pool can reclaim the queue's allocations for the next run.
    pub fn into_parts(self) -> (M, EventQueue<M::Event>) {
        (self.model, self.queue)
    }

    /// Runs until the queue drains, the model requests a stop, or the next
    /// event would fire at or after `horizon`. Events exactly at the
    /// horizon are *not* handled, so `[0, horizon)` is simulated.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let mut stop = false;
        // Watchdog bookkeeping lives in locals so the disarmed loop
        // stays branch-light; the same-instant streak is per-call.
        let mut at_instant: u64 = 0;
        let mut last_t: Option<SimTime> = None;
        loop {
            // Merge the queue head against the model's side stream (if
            // any) by (time, seq): both kinds of key come from the same
            // sequence counter, so the comparison reproduces the order a
            // queue-only run would dispatch. Keys are unique — the
            // counter never hands out a number twice.
            let (t, from_side) = match (self.queue.peek_key(), self.model.side_peek()) {
                (None, None) => {
                    return RunOutcome::Drained {
                        last_event: self.last_handled,
                    }
                }
                (Some((qt, _)), None) => (qt, false),
                (None, Some((st, _))) => (st, true),
                (Some(q), Some(s)) => {
                    if s < q {
                        (s.0, true)
                    } else {
                        (q.0, false)
                    }
                }
            };
            if t >= horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            let ev = if from_side {
                self.model.side_pop()
            } else {
                self.queue.pop().expect("peeked event present").1
            };
            self.now = t;
            self.handled += 1;
            self.last_handled = Some(t);
            if let Some(wd) = self.watchdog {
                if wd.max_events.is_some_and(|max| self.handled > max) {
                    return RunOutcome::WatchdogFired {
                        at: t,
                        events: self.handled,
                        kind: WatchdogKind::EventBudget,
                    };
                }
                if last_t == Some(t) {
                    at_instant += 1;
                } else {
                    at_instant = 1;
                    last_t = Some(t);
                }
                if wd.max_events_at_instant.is_some_and(|max| at_instant > max) {
                    return RunOutcome::WatchdogFired {
                        at: t,
                        events: self.handled,
                        kind: WatchdogKind::NoProgress,
                    };
                }
            }
            let mut ctx = Scheduler {
                queue: &mut self.queue,
                now: t,
                stop: &mut stop,
            };
            match &mut self.profiler {
                None => self.model.handle(t, ev, &mut ctx),
                Some(p) => {
                    let t0 = PhaseProfiler::start();
                    self.model.handle(t, ev, &mut ctx);
                    p.stop(PHASE_DISPATCH, t0);
                }
            }
            if stop {
                return RunOutcome::Stopped { at: t };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        stop_on: Option<u32>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, ctx: &mut Scheduler<'_, u32>) {
            self.seen.push((now, ev));
            if self.stop_on == Some(ev) {
                ctx.request_stop();
            }
        }
    }

    fn t(u: i64) -> SimTime {
        SimTime::from_whole_units(u)
    }

    #[test]
    fn drains_in_order() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: None,
        });
        e.schedule(t(2), 20);
        e.schedule(t(1), 10);
        let out = e.run_until(t(100));
        assert_eq!(
            out,
            RunOutcome::Drained {
                last_event: Some(t(2))
            }
        );
        assert_eq!(e.model().seen, vec![(t(1), 10), (t(2), 20)]);
        assert_eq!(e.events_handled(), 2);
    }

    #[test]
    fn horizon_excludes_boundary_event() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: None,
        });
        e.schedule(t(5), 1);
        e.schedule(t(10), 2);
        let out = e.run_until(t(10));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(e.model().seen, vec![(t(5), 1)]);
        assert_eq!(e.now(), t(10));
    }

    #[test]
    fn stop_request_halts_immediately() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: Some(1),
        });
        e.schedule(t(1), 1);
        e.schedule(t(2), 2);
        let out = e.run_until(t(100));
        assert_eq!(out, RunOutcome::Stopped { at: t(1) });
        assert_eq!(e.model().seen.len(), 1);
    }

    #[test]
    fn self_scheduling_model() {
        struct Ticker {
            remaining: u32,
        }
        impl Model for Ticker {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), ctx: &mut Scheduler<'_, ()>) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.schedule(now + SimDuration::from_whole_units(1), ());
                }
            }
        }
        let mut e = Engine::new(Ticker { remaining: 5 });
        e.schedule(SimTime::ZERO, ());
        e.run_until(SimTime::from_whole_units(100));
        assert_eq!(e.model().remaining, 0);
        assert_eq!(e.events_handled(), 6);
    }

    #[test]
    fn profiling_times_every_dispatch() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: None,
        });
        assert!(e.profiler().is_none(), "profiling is off by default");
        e.enable_profiling();
        e.schedule(t(1), 1);
        e.schedule(t(2), 2);
        e.run_until(t(100));
        let profile = e.profiler().expect("enabled").summary();
        let dispatch = profile.get(PHASE_DISPATCH).expect("phase recorded");
        assert_eq!(dispatch.calls, 2);
        assert_eq!(e.queue_stats().popped, 2);
    }

    #[test]
    fn with_queue_reuses_reset_queue_identically() {
        let run = |queue| {
            let mut e = Engine::with_queue(
                Recorder {
                    seen: vec![],
                    stop_on: None,
                },
                queue,
            );
            e.schedule(t(2), 20);
            e.schedule(t(1), 10);
            e.schedule(t(1), 11);
            e.run_until(t(100));
            let stats = e.queue_stats();
            let (model, mut queue) = e.into_parts();
            queue.reset();
            (model.seen, stats, queue)
        };
        let (fresh_seen, fresh_stats, queue) = run(EventQueue::new());
        let (pooled_seen, pooled_stats, _) = run(queue);
        assert_eq!(fresh_seen, pooled_seen);
        let mut pooled_stats = pooled_stats;
        pooled_stats.slab_capacity = fresh_stats.slab_capacity;
        assert_eq!(fresh_stats, pooled_stats);
    }

    #[test]
    #[should_panic(expected = "fresh or reset")]
    fn with_queue_rejects_advanced_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1u32);
        q.pop();
        let _ = Engine::with_queue(
            Recorder {
                seen: vec![],
                stop_on: None,
            },
            q,
        );
    }

    #[test]
    fn watchdog_event_budget_aborts_runaway_model() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), ctx: &mut Scheduler<'_, ()>) {
                ctx.schedule(now + SimDuration::from_whole_units(1), ());
            }
        }
        let mut e = Engine::new(Forever);
        e.set_watchdog(Some(Watchdog::with_max_events(10)));
        e.schedule(SimTime::ZERO, ());
        let out = e.run_until(t(1_000_000));
        assert_eq!(
            out,
            RunOutcome::WatchdogFired {
                at: t(10),
                events: 11,
                kind: WatchdogKind::EventBudget,
            }
        );
    }

    #[test]
    fn watchdog_no_progress_catches_same_instant_spin() {
        struct Spinner;
        impl Model for Spinner {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), ctx: &mut Scheduler<'_, ()>) {
                // Reschedules at `now` forever: time never advances.
                ctx.schedule(now, ());
            }
        }
        let mut e = Engine::new(Spinner);
        e.set_watchdog(Some(Watchdog {
            max_events: None,
            max_events_at_instant: Some(5),
        }));
        e.schedule(t(3), ());
        let out = e.run_until(t(100));
        assert_eq!(
            out,
            RunOutcome::WatchdogFired {
                at: t(3),
                events: 6,
                kind: WatchdogKind::NoProgress,
            }
        );
    }

    #[test]
    fn watchdog_spares_models_within_budget() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: None,
        });
        e.set_watchdog(Some(Watchdog {
            max_events: Some(10),
            max_events_at_instant: Some(3),
        }));
        e.schedule(t(1), 1);
        e.schedule(t(1), 2);
        e.schedule(t(1), 3);
        e.schedule(t(2), 4);
        let out = e.run_until(t(100));
        assert_eq!(
            out,
            RunOutcome::Drained {
                last_event: Some(t(2))
            }
        );
        assert_eq!(e.model().seen.len(), 4);
    }

    #[test]
    fn empty_watchdog_is_disarmed() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: None,
        });
        e.set_watchdog(Some(Watchdog::default()));
        e.schedule(t(1), 1);
        let out = e.run_until(t(100));
        assert_eq!(
            out,
            RunOutcome::Drained {
                last_event: Some(t(1))
            }
        );
    }

    #[test]
    fn resume_after_horizon() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            stop_on: None,
        });
        e.schedule(t(5), 1);
        e.run_until(t(3));
        assert!(e.model().seen.is_empty());
        e.run_until(t(10));
        assert_eq!(e.model().seen, vec![(t(5), 1)]);
    }
}
