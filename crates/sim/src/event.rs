//! A deterministic, cancellable event queue.
//!
//! Events fire in time order; ties are broken by insertion order, so a
//! simulation run is a pure function of its inputs. Cancellation is lazy:
//! a cancelled entry stays in the heap and is skipped on pop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Ordering is on (time, seq) only; payload does not participate.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A time-ordered queue of simulation events with stable tie-breaking and
/// O(log n) scheduling.
///
/// # Examples
///
/// ```
/// use harvest_sim::event::EventQueue;
/// use harvest_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_whole_units(5), "later");
/// q.schedule(SimTime::from_whole_units(1), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_whole_units(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    last_popped: Option<SimTime>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Schedules `payload` to fire at `time`, returning a cancellation
    /// handle. Events scheduled for the same instant fire in scheduling
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `time` lies before the last popped event — the past is
    /// immutable in a discrete-event simulation.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        if let Some(last) = self.last_popped {
            assert!(
                time >= last,
                "cannot schedule an event at {time} before the current time {last}"
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.last_popped = Some(entry.time);
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Time of the most recently popped event, i.e. "now" from the
    /// queue's perspective.
    pub fn current_time(&self) -> Option<SimTime> {
        self.last_popped
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: i64) -> SimTime {
        SimTime::from_whole_units(u)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.schedule(t(5), 2);
        q.schedule(t(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(1), "dead");
        q.schedule(t(2), "alive");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("alive"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(7), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(7)));
    }

    #[test]
    fn current_time_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(4), ());
        assert_eq!(q.current_time(), None);
        q.pop();
        assert_eq!(q.current_time(), Some(t(4)));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn same_instant_as_current_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.pop();
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }
}
