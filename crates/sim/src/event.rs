//! A deterministic, cancellable event queue.
//!
//! Events fire in time order; ties are broken by insertion order, so a
//! simulation run is a pure function of its inputs. The queue is a
//! **monotone radix heap** (byte digits) over a slab with a free-list,
//! exploiting the discrete-event contract that time never runs
//! backwards:
//!
//! * every pending event is encoded as a 96-bit key `(time, seq)`
//!   (order-preserving sign-flipped ticks in the high 64 bits, the
//!   insertion sequence number in the low 32), so keys are unique and
//!   strictly increase along the pop order;
//! * the key of the last popped event is a permanent lower **bound**
//!   for every live and future key — [`schedule`](EventQueue::schedule)
//!   rejects the past, and sequence numbers only grow — so entries
//!   bucket by `(level, digit)`: the byte position at which their key
//!   first differs from the bound, and the key's byte value there
//!   (Ahuja et al.'s multi-level radix heap, base 256): O(1) scheduling
//!   with no comparisons and no sifting;
//! * popping drains the lowest occupied bucket in a single fused pass
//!   that selects the minimum and re-files the survivors against the
//!   advanced bound; survivors only ever descend levels, so maintenance
//!   is amortized O(1) per event (≤ 16 moves ever, per entry; 2–4 in
//!   practice — simulation keys cluster near the bound). Level-0
//!   buckets pin every key byte and keys are unique, so they are
//!   singletons and the common pop is a bitmap scan plus two inline
//!   24-byte moves;
//! * cache-sized drains skip the re-filing entirely: the bucket's
//!   spill vector is stolen wholesale as a side **run** (ascending
//!   keys, outside the radix structure, so nothing about it can go
//!   stale), sorted by one MSD counting scatter on the tick bits that
//!   actually vary plus a per-group finish — and every later pop from
//!   it is a cursor bump racing the buckets by raw key;
//! * a **top register** keeps the current minimum outside the buckets,
//!   making [`peek_time`](EventQueue::peek_time) O(1), and the **slab**
//!   records each entry's bucket location, so cancellation is a true
//!   O(1) swap-remove — no hashing, no tombstones left behind to skip
//!   on pop. Entries absorbed into the run keep their stale bucket
//!   location (patching thousands of scattered slab lines would cost
//!   more than it saves): cancellation detects the mismatch — no
//!   bucketed entry can carry the cancelled handle's slot number — and
//!   finds the entry by scanning the run for its slot (cancellation is
//!   rare in simulation workloads, never on a hot path).
//!
//! Payloads require `Copy` and live in the slab, not in the buckets:
//! bucket entries are bare 16-byte `(ticks, seq, slot)` triples, so
//! drains move a minimum of bytes regardless of the payload type, and
//! popping reads the payload from the very cache line it writes the
//! free-list link to.
//!
//! An [`EventId`] carries `(slot, seq)`: the slot addresses the slab
//! and the sequence number acts as a generation check, so handles to
//! events that already fired, were cancelled, or whose slot was
//! recycled are rejected in O(1).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Handle to a scheduled event, usable to cancel it.
///
/// A handle is invalidated once its event fires or is cancelled;
/// [`EventQueue::cancel`] on a stale handle returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    slot: u32,
    seq: u32,
}

/// Sentinel for "no slot" in the free-list chain and the top register.
const NIL: u32 = u32::MAX;

/// Byte levels in a 96-bit key.
const LEVELS: usize = 12;

/// Digits per level.
const DIGITS: usize = 256;

/// Number of radix buckets: flat `level * DIGITS + digit` indexing, so
/// the smallest occupied flat index is the bucket holding the minimum.
const BUCKETS: usize = LEVELS * DIGITS;

/// `seq` value marking a freed slot or an empty register:
/// [`EventQueue::schedule`] refuses to issue it (after 2^32 - 1 events
/// on one queue), so a dead slot fails every handle's generation check
/// and no live entry is ever mistaken for an empty `first`/`top`.
const SEQ_DEAD: u32 = u32::MAX;

/// Sign-flips `time`'s ticks so unsigned order matches time order.
#[inline]
fn flip(time: SimTime) -> u64 {
    (time.as_ticks() as u64) ^ (1 << 63)
}

/// Inverse of [`flip`].
#[inline]
fn unflip(tk: u64) -> SimTime {
    SimTime::from_ticks((tk ^ (1 << 63)) as i64)
}

/// Outlined panic for scheduling into the past, keeping the format
/// machinery off the hot path. Only reachable after at least one pop,
/// so `last` is always `Some`.
#[cold]
#[inline(never)]
fn past_panic(time: SimTime, last: Option<SimTime>) -> ! {
    let last = last.expect("a bound implies a popped event");
    panic!("cannot schedule an event at {time} before the current time {last}");
}

/// One pending event as the radix structure sees it: sign-flipped
/// ticks, sequence number (together the 96-bit key), and the slab
/// slot backing its handle and payload. Plain 16 bytes, independent of
/// the payload type, so bucket maintenance is cheap and non-generic.
#[derive(Debug, Clone, Copy)]
struct Entry {
    tk: u64,
    seq: u32,
    slot: u32,
}

impl Entry {
    /// An empty register: compares above every real key, and its
    /// [`SEQ_DEAD`] sequence number can never be issued.
    const EMPTY: Entry = Entry {
        tk: u64::MAX,
        seq: SEQ_DEAD,
        slot: NIL,
    };

    #[inline]
    fn is_empty(self) -> bool {
        self.seq == SEQ_DEAD
    }

    #[inline]
    fn key(self) -> u128 {
        ((self.tk as u128) << 32) | self.seq as u128
    }
}

/// Bits of a packed [`Slot::loc`] holding the in-bucket position.
const IDX_BITS: u32 = 20;

/// Cancellation bookkeeping and payload storage for one live event.
#[derive(Debug)]
struct Slot<E> {
    /// Sequence number of the occupying event — the insertion-order
    /// tie-break and the generation check for stale handles —
    /// or [`SEQ_DEAD`] while the slot sits on the free list.
    seq: u32,
    /// Packed bucket location while bucketed: the flat bucket index in
    /// the high 12 bits, the position within the bucket in the low
    /// [`IDX_BITS`] (`0` for `first`, `i + 1` for `rest[i]`; spill
    /// vectors are asserted to stay below that bound). Stale for the
    /// cached minimum and for run entries (cancellation verifies it
    /// before trusting it). The next free slot while free.
    loc: u32,
    payload: E,
}

/// Packs a flat bucket index and an in-bucket position into a
/// [`Slot::loc`].
#[inline]
fn pack_loc(bucket: usize, pos: u32) -> u32 {
    (bucket as u32) << IDX_BITS | pos
}

/// Two-level bitmap over the flat bucket space: `words[w]` tracks 64
/// buckets and `summary` tracks which words are non-zero, so the lowest
/// occupied bucket is two `trailing_zeros` away.
#[derive(Debug)]
struct Occupancy {
    summary: u64,
    words: [u64; BUCKETS / 64],
}

impl Occupancy {
    fn new() -> Self {
        Occupancy {
            summary: 0,
            words: [0; BUCKETS / 64],
        }
    }

    #[inline]
    fn set(&mut self, bucket: usize) {
        self.words[bucket >> 6] |= 1 << (bucket & 63);
        self.summary |= 1 << (bucket >> 6);
    }

    #[inline]
    fn clear(&mut self, bucket: usize) {
        let w = bucket >> 6;
        self.words[w] &= !(1 << (bucket & 63));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// Clears the lowest set bit of `words[w]`, which must also be the
    /// word holding the lowest set bit overall: `x & (x - 1)` drops it
    /// without rebuilding a mask.
    #[inline]
    fn clear_lowest(&mut self, w: usize) {
        self.words[w] &= self.words[w] - 1;
        if self.words[w] == 0 {
            self.summary &= self.summary - 1;
        }
    }

    /// The smallest occupied bucket index, if any.
    #[inline]
    fn lowest(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let w = self.summary.trailing_zeros() as usize;
        Some((w << 6) + self.words[w].trailing_zeros() as usize)
    }
}

/// One radix bucket, with the first entry stored inline: level-0
/// buckets are singletons (they pin every key byte and keys are
/// unique), so the common pop reads straight out of the bucket table —
/// no heap chase — and singleton buckets never allocate at all.
/// Positions are `0` for `first` and `i + 1` for `rest[i]`; `first` is
/// always occupied before `rest` is.
#[derive(Debug)]
struct Bucket {
    first: Entry,
    rest: Vec<Entry>,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            first: Entry::EMPTY,
            rest: Vec::new(),
        }
    }
}

/// Largest bucket [`EventQueue::drain_refill`] will sort into the run
/// rather than re-file downwards. Sorting wins while the bucket stays
/// cache-resident (the sort is one hot O(k log k) pass and every later
/// pop is a `Vec::pop`, where re-filing pays per-entry bucket pushes
/// and bitmap maintenance); beyond this it degrades, and the radix
/// distribution keeps the amortized O(1) bound.
const SORT_MAX: usize = 1 << 16;

/// Smallest bucket worth radix-sorting in
/// [`EventQueue::sort_into_run`]; below this a comparison sort beats
/// the counting pass's fixed histogram cost.
const RADIX_MIN: usize = 256;

/// Digit width of the counting pass in [`EventQueue::sort_into_run`]:
/// 2^11 × 4-byte counters stay comfortably cache-resident while
/// splitting a drained bucket into up to 2048 narrow groups.
const PASS_BITS: usize = 11;

/// Digits per counting pass.
const PASS_DIGITS: usize = 1 << PASS_BITS;

/// Lifetime operation counts of an [`EventQueue`], for observability.
///
/// Gathering these costs the hot paths nothing: `scheduled` is the
/// sequence counter the queue already maintains, `popped` is derived
/// (`scheduled - cancelled - cleared - pending`), and the remaining
/// counters live on cold paths (cancellation, multi-entry drains) —
/// except `max_pending`, one predictable compare per schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events removed by [`EventQueue::pop`].
    pub popped: u64,
    /// Events removed by [`EventQueue::cancel`].
    pub cancelled: u64,
    /// Events dropped by [`EventQueue::clear`].
    pub cleared: u64,
    /// Events pending right now.
    pub pending: u64,
    /// Current slab capacity in slots — how much pending-event storage
    /// the queue retains across [`EventQueue::clear`] /
    /// [`EventQueue::reset`]. Pooled sweeps read this as the pool's
    /// high-water mark; [`EventQueue::shrink_to`] bounds it.
    pub slab_capacity: u64,
    /// High-water mark of pending events (bucket occupancy peak).
    pub max_pending: u64,
    /// Multi-entry bucket drains (singleton refills are not counted —
    /// they are the O(1) common case).
    pub drains: u64,
    /// Drains absorbed wholesale into a sorted side run.
    pub sorted_drains: u64,
    /// Drains re-filed entry-by-entry through the radix distribution.
    pub scattered_drains: u64,
}

/// A time-ordered queue of simulation events with stable tie-breaking,
/// O(1) scheduling, amortized O(1) popping, and O(1) true cancellation.
///
/// Payloads must be `Copy`: they are stored out-of-line in the slab
/// and copied out when the event fires.
///
/// # Examples
///
/// ```
/// use harvest_sim::event::EventQueue;
/// use harvest_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_whole_units(5), "later");
/// q.schedule(SimTime::from_whole_units(1), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_whole_units(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The current minimum, cached outside the buckets;
    /// [`Entry::EMPTY`] when the queue is empty.
    top: Entry,
    /// `buckets[level * DIGITS + digit]` holds entries whose key first
    /// differs from the bound (at insertion or last redistribution
    /// time) at byte `level`, where the key's byte is `digit`. Always
    /// `BUCKETS` long.
    buckets: Vec<Bucket>,
    /// Which buckets are non-empty.
    occupied: Occupancy,
    /// Spare entry storage for [`drain_refill`](Self::drain_refill):
    /// empty between calls, swapping capacities with the drained
    /// bucket so steady-state drains never allocate.
    scratch: Vec<Entry>,
    /// Survivors of a drained bucket, sorted by **ascending** key;
    /// `run[run_head..]` are the live ones, so the next candidate
    /// minimum is a cursor bump away. The run lives outside the radix
    /// structure — it has no filing to go stale as the bound advances —
    /// and refills compare its head against the bucket-derived minimum
    /// by raw key. At most one run exists at a time; while it is
    /// non-empty, drains fall back to the radix distribution.
    run: Vec<Entry>,
    /// First live index of `run`; the vector is cleared (and the
    /// cursor reset) the moment it empties, so `run.is_empty()` means
    /// no run.
    run_head: usize,
    /// Cancellation and payload slab; freed slots are chained through
    /// `idx`.
    slots: Vec<Slot<E>>,
    /// Head of the free-slot chain.
    free_head: u32,
    next_seq: u32,
    last_popped: Option<SimTime>,
    /// The radix reference: the key of the last popped event (zero
    /// before any pop). Every live or future key is at least this
    /// large, and strictly larger for any bucketed entry.
    bound: u128,
    len: usize,
    /// High-water mark of `len`.
    max_len: usize,
    /// Events removed by [`cancel`](Self::cancel).
    cancelled: u64,
    /// Events dropped by [`clear`](Self::clear).
    cleared: u64,
    /// Multi-entry drains, split by strategy (sorted run vs. radix
    /// re-file). Both are bumped off the singleton fast path.
    sorted_drains: u64,
    scattered_drains: u64,
}

impl<E: Copy> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Copy> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            top: Entry::EMPTY,
            buckets: (0..BUCKETS).map(|_| Bucket::new()).collect(),
            occupied: Occupancy::new(),
            scratch: Vec::new(),
            run: Vec::new(),
            run_head: 0,
            slots: Vec::new(),
            free_head: NIL,
            next_seq: 0,
            last_popped: None,
            bound: 0,
            len: 0,
            max_len: 0,
            cancelled: 0,
            cleared: 0,
            sorted_drains: 0,
            scattered_drains: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the slab reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.slots.reserve(capacity);
        q
    }

    /// Schedules `payload` to fire at `time`, returning a cancellation
    /// handle. Events scheduled for the same instant fire in scheduling
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `time` lies before the last popped event — the past is
    /// immutable in a discrete-event simulation.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let tk = flip(time);
        // The bound's high half is the sign-flipped ticks of the last
        // popped event (zero before any pop, below every flipped time),
        // so one register compare enforces "no scheduling in the past".
        if tk < (self.bound >> 32) as u64 {
            past_panic(time, self.last_popped);
        }
        let seq = self.next_seq;
        assert!(seq != SEQ_DEAD, "event queue sequence space exhausted");
        self.next_seq += 1;

        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.slots[slot as usize].loc;
            slot
        } else {
            let slot = self.slots.len() as u32;
            assert!(slot != NIL, "event queue slot index space exhausted");
            slot
        };

        let e = Entry { tk, seq, slot };
        let t = self.top;
        // An empty top compares above every real key, so a fresh queue
        // takes this branch and files nothing. The stale `(0, 0)`
        // location recorded for a new minimum is never trusted:
        // `cancel` matches the top register by slot number first.
        let loc = if (e.tk, e.seq) < (t.tk, t.seq) {
            self.top = e;
            if !t.is_empty() {
                // The new event preempts the cached minimum; the old
                // minimum rejoins the buckets (its key exceeds the
                // bound, like any live entry's).
                self.insert(t);
            }
            0
        } else {
            self.file(e)
        };
        // One coherent write of the whole slot, after its location is
        // known.
        let s = Slot { seq, loc, payload };
        if (slot as usize) < self.slots.len() {
            self.slots[slot as usize] = s;
        } else {
            self.slots.push(s);
        }
        self.len += 1;
        if self.len > self.max_len {
            self.max_len = self.len;
        }
        EventId { slot, seq }
    }

    /// Cancels a previously scheduled event, removing it immediately.
    /// Returns `true` if the event was still pending; handles to events
    /// that already fired, were already cancelled, or were dropped by
    /// [`clear`](Self::clear) return `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let (bucket, idx) = match self.slots.get(id.slot as usize) {
            Some(s) if s.seq == id.seq => (
                (s.loc >> IDX_BITS) as usize,
                (s.loc & ((1 << IDX_BITS) - 1)) as usize,
            ),
            _ => return false,
        };
        // The cached minimum and run entries keep a stale `bucket` in
        // their slots, so match the top register by slot number, then
        // verify the recorded bucket really holds this entry. Slot
        // numbers are unique among live events, so a mismatch proves
        // the entry sits in the run — where its key pinpoints it.
        if self.top.slot == id.slot {
            self.top = Entry::EMPTY;
            self.free_slot(id.slot);
            self.refill_in_place();
        } else {
            let bk = &self.buckets[bucket];
            let here = match idx {
                0 => bk.first.slot,
                i => bk.rest.get(i - 1).map_or(NIL, |e| e.slot),
            };
            if here == id.slot {
                self.remove_bucketed(bucket, idx);
            } else {
                let rel = self.run[self.run_head..]
                    .iter()
                    .position(|e| e.slot == id.slot)
                    .expect("live non-bucketed entry is in the run");
                self.remove_from_run(self.run_head + rel);
            }
            self.free_slot(id.slot);
        }
        self.len -= 1;
        self.cancelled += 1;
        true
    }

    /// Removes and returns the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let top = self.top;
        if top.is_empty() {
            return None;
        }
        // The popped key becomes the new radix bound: all remaining
        // keys exceed it (it was the minimum), and so does every future
        // key (later sequence numbers, no scheduling in the past).
        self.bound = top.key();
        let time = unflip(top.tk);
        let s = &mut self.slots[top.slot as usize];
        let payload = s.payload;
        s.seq = SEQ_DEAD;
        s.loc = self.free_head;
        self.free_head = top.slot;
        self.last_popped = Some(time);
        self.len -= 1;
        self.refill_top();
        // Touch the next event's slab line: the following pop reads its
        // payload, and issuing the load now overlaps the miss with the
        // caller's event handling.
        if !self.top.is_empty() {
            std::hint::black_box(self.slots[self.top.slot as usize].seq);
        }
        Some((time, payload))
    }

    /// Time of the earliest pending event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.top.is_empty() {
            None
        } else {
            Some(unflip(self.top.tk))
        }
    }

    /// `(time, seq)` of the earliest pending event without removing it.
    ///
    /// Sequence numbers order same-instant events in scheduling order,
    /// so this key totally orders the queue's head against events held
    /// outside the queue whose sequence numbers came from
    /// [`alloc_seq`](Self::alloc_seq).
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u32)> {
        if self.top.is_empty() {
            None
        } else {
            Some((unflip(self.top.tk), self.top.seq))
        }
    }

    /// Claims the next sequence number without scheduling anything.
    ///
    /// A caller that keeps some events *outside* the queue (e.g. a
    /// precomputed [`ReleaseTape`] consumed by a cursor) allocates their
    /// sequence numbers here, at the exact points the heap-driven run
    /// would have scheduled them. Merging by `(time, seq)` against
    /// [`peek_key`](Self::peek_key) then reproduces the heap-driven
    /// dispatch order bit for bit, because every event — queued or
    /// elided — carries the same key it would have carried in the queue.
    ///
    /// Note that [`QueueStats::scheduled`] counts claimed sequence
    /// numbers, so elided events still show up there (and in the derived
    /// `popped`) even though they never occupy a slot.
    ///
    /// # Panics
    ///
    /// Panics if the sequence space is exhausted.
    #[inline]
    pub fn alloc_seq(&mut self) -> u32 {
        let seq = self.next_seq;
        assert!(seq != SEQ_DEAD, "event queue sequence space exhausted");
        self.next_seq += 1;
        seq
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Time of the most recently popped event, i.e. "now" from the
    /// queue's perspective.
    pub fn current_time(&self) -> Option<SimTime> {
        self.last_popped
    }

    /// Lifetime operation counts; see [`QueueStats`].
    pub fn stats(&self) -> QueueStats {
        let scheduled = self.next_seq as u64;
        let pending = self.len as u64;
        QueueStats {
            scheduled,
            popped: scheduled - self.cancelled - self.cleared - pending,
            cancelled: self.cancelled,
            cleared: self.cleared,
            pending,
            slab_capacity: self.slots.capacity() as u64,
            max_pending: self.max_len as u64,
            drains: self.sorted_drains + self.scattered_drains,
            sorted_drains: self.sorted_drains,
            scattered_drains: self.scattered_drains,
        }
    }

    /// Number of slab slots the queue can hold without reallocating.
    /// Capacity survives [`clear`](Self::clear) and
    /// [`reset`](Self::reset), which is what makes pooled reuse
    /// allocation-free; bound it with [`shrink_to`](Self::shrink_to).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Shrinks the retained storage toward `limit` slots: the slab, the
    /// drain scratch, and the sorted side run all drop excess capacity
    /// (never below their current lengths). A pool that absorbed one
    /// pathologically large run calls this to stop that run's footprint
    /// from being carried forever.
    pub fn shrink_to(&mut self, limit: usize) {
        self.slots.shrink_to(limit);
        self.scratch.shrink_to(limit);
        self.run.shrink_to(limit);
        for b in &mut self.buckets {
            b.rest.shrink_to(limit);
        }
    }

    /// Restores the queue to its as-new logical state — empty, sequence
    /// counter at zero, no time bound, statistics zeroed — while
    /// keeping every allocation (slab, buckets, scratch, run). A run
    /// executed on a reset queue is bit-identical to one executed on a
    /// fresh queue: scheduling order, sequence tie-breaking, and
    /// [`stats`](Self::stats) all replay exactly.
    ///
    /// This is the pooling primitive: [`clear`](Self::clear) only drops
    /// pending events (the time bound keeps advancing, so a cleared
    /// queue still rejects scheduling before the last popped instant),
    /// while `reset` rewinds the clock for the next independent run.
    pub fn reset(&mut self) {
        self.top = Entry::EMPTY;
        while let Some(b) = self.occupied.lowest() {
            self.buckets[b].first = Entry::EMPTY;
            self.buckets[b].rest.clear();
            self.occupied.clear(b);
        }
        self.run.clear();
        self.run_head = 0;
        self.slots.clear();
        self.free_head = NIL;
        self.next_seq = 0;
        self.last_popped = None;
        self.bound = 0;
        self.len = 0;
        self.max_len = 0;
        self.cancelled = 0;
        self.cleared = 0;
        self.sorted_drains = 0;
        self.scattered_drains = 0;
    }

    /// Drops every pending event. Outstanding handles become stale.
    pub fn clear(&mut self) {
        self.cleared += self.len as u64;
        self.top = Entry::EMPTY;
        while let Some(b) = self.occupied.lowest() {
            self.buckets[b].first = Entry::EMPTY;
            self.buckets[b].rest.clear();
            self.occupied.clear(b);
        }
        self.run.clear();
        self.run_head = 0;
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }

    /// The bucket `e` belongs to under the current bound: the byte
    /// position at which its key first differs from the bound, paired
    /// with the key's byte value there. Works on the split halves of
    /// the 96-bit key — 64-bit scans beat widening to `u128`. `e`'s key
    /// must exceed the bound (true of every bucketed entry).
    #[inline]
    fn bucket_of(&self, e: Entry) -> usize {
        debug_assert!(e.key() > self.bound, "bucketed key at or below the bound");
        let xhi = e.tk ^ (self.bound >> 32) as u64;
        if xhi != 0 {
            let level = ((95 - xhi.leading_zeros()) >> 3) as usize;
            let digit = (e.tk >> (level * 8 - 32)) as usize & (DIGITS - 1);
            (level << 8) | digit
        } else {
            // Keys are unique and exceed the bound, so the low halves
            // differ whenever the high halves agree.
            let xlo = e.seq ^ self.bound as u32;
            let level = ((31 - xlo.leading_zeros()) >> 3) as usize;
            let digit = (e.seq >> (level * 8)) as usize & (DIGITS - 1);
            (level << 8) | digit
        }
    }

    /// Files `e` into its radix bucket, returning the packed location
    /// without touching the slab — for [`schedule`](Self::schedule),
    /// which writes the whole slot in one go.
    #[inline]
    fn file(&mut self, e: Entry) -> u32 {
        let b = self.bucket_of(e);
        let bk = &mut self.buckets[b];
        let pos = if bk.first.is_empty() {
            bk.first = e;
            // `first` occupied ⇔ the occupancy bit is set, so only the
            // empty→occupied transition touches the bitmap.
            self.occupied.set(b);
            0
        } else {
            bk.rest.push(e);
            let pos = bk.rest.len() as u32;
            assert!(pos < 1 << IDX_BITS, "event queue bucket overflow");
            pos
        };
        pack_loc(b, pos)
    }

    /// Files `e` into its radix bucket and records the location in its
    /// slot.
    #[inline]
    fn insert(&mut self, e: Entry) {
        let loc = self.file(e);
        self.slots[e.slot as usize].loc = loc;
    }

    /// Swap-removes the entry at `pos` of bucket `b`, patching the
    /// location of whichever entry fills the hole.
    fn remove_bucketed(&mut self, b: usize, pos: usize) {
        let bk = &mut self.buckets[b];
        if pos == 0 {
            match bk.rest.pop() {
                Some(e) => {
                    bk.first = e;
                    self.slots[e.slot as usize].loc = pack_loc(b, 0);
                }
                None => {
                    bk.first = Entry::EMPTY;
                    self.occupied.clear(b);
                }
            }
        } else {
            bk.rest.swap_remove(pos - 1);
            if let Some(e) = bk.rest.get(pos - 1) {
                self.slots[e.slot as usize].loc = pack_loc(b, pos as u32);
            }
        }
    }

    /// Removes the run entry at `pos` (an absolute index, at or past
    /// the cursor). Removing the head or the tail keeps the run intact;
    /// an interior removal would break its order, so the survivors
    /// spill back into the radix buckets instead (their keys all exceed
    /// the bound, like any live entry's). Cancellation is rare in
    /// simulation workloads, so the spill is off every hot path.
    fn remove_from_run(&mut self, pos: usize) {
        if pos == self.run_head {
            self.run_advance();
            return;
        }
        if pos + 1 == self.run.len() {
            self.run.pop();
            return;
        }
        let run = std::mem::take(&mut self.run);
        for (j, &e) in run.iter().enumerate().skip(self.run_head) {
            if j != pos {
                self.insert(e);
            }
        }
        self.run = run;
        self.run.clear();
        self.run_head = 0;
    }

    /// Chains the slot onto the free list; its old handles go stale.
    #[inline]
    fn free_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.seq = SEQ_DEAD;
        s.loc = self.free_head;
        self.free_head = slot;
    }

    /// Restores the top register after a pop emptied it.
    ///
    /// After the bound advances, the only bucket whose filings can be
    /// stale is the lowest occupied one (the popped key's own bucket
    /// index can't exceed any occupied bucket's, and only entries
    /// sharing it re-file), so promoting or draining that bucket
    /// *entirely* restores exactness everywhere. The run needs no such
    /// care — it has no filing — and just competes by key.
    ///
    /// The common cases stay inline: with only the run pending, a
    /// cursor bump; a singleton bucket (as level-0 buckets always are),
    /// two 16-byte moves and a lowest-bit clear. Multi-entry buckets
    /// take the outlined drain.
    #[inline]
    fn refill_top(&mut self) {
        if self.occupied.summary == 0 {
            self.top = match self.run_min() {
                Some(e) => {
                    self.run_advance();
                    e
                }
                None => Entry::EMPTY,
            };
            return;
        }
        let w = self.occupied.summary.trailing_zeros() as usize;
        let b = (w << 6) + self.occupied.words[w].trailing_zeros() as usize;
        let bk = &mut self.buckets[b];
        if bk.rest.is_empty() {
            self.top = bk.first;
            bk.first = Entry::EMPTY;
            self.occupied.clear_lowest(w);
        } else {
            self.drain_refill(b);
        }
        // The run's head competes with the bucket-derived minimum; if
        // it wins, the beaten entry rejoins the buckets (filed against
        // the current bound, so nothing goes stale).
        if let Some(m) = self.run_min() {
            if (m.tk, m.seq) < (self.top.tk, self.top.seq) {
                let beaten = self.top;
                self.top = m;
                self.run_advance();
                self.insert(beaten);
            }
        }
    }

    /// The run's smallest live entry, if any.
    #[inline]
    fn run_min(&self) -> Option<Entry> {
        self.run.get(self.run_head).copied()
    }

    /// Consumes the run's smallest live entry; clears the vector the
    /// moment it empties so `run.is_empty()` keeps meaning "no run"
    /// (and the capacity stays for the next drain).
    #[inline]
    fn run_advance(&mut self) {
        self.run_head += 1;
        if self.run_head == self.run.len() {
            self.run.clear();
            self.run_head = 0;
        }
    }

    /// Drains multi-entry bucket `b` after a pop.
    ///
    /// If the run is free and the bucket is cache-sized, the bucket is
    /// sorted wholesale into the run (see [`SORT_MAX`]). Otherwise one
    /// fused pass holds the running minimum in a register and re-files
    /// every beaten entry against the advanced bound. Survivors never
    /// ascend — the popped key agrees with the old bound above `b`'s
    /// level, so each survivor lands at `b` or below — which is what
    /// amortizes the maintenance cost to O(1) per event. The drained
    /// vector swaps capacities with the scratch buffer (a survivor may
    /// re-file into `b` itself, so `b` needs a real vector during the
    /// pass), and steady-state drains therefore never allocate.
    #[cold]
    #[inline(never)]
    fn drain_refill(&mut self, b: usize) {
        let bk = &mut self.buckets[b];
        debug_assert!(!bk.first.is_empty(), "occupied bucket without a first");
        if self.run.is_empty() && bk.rest.len() < SORT_MAX {
            self.sorted_drains += 1;
            // Sort the drained bucket into the run: a few hot counting
            // passes now, and every later pop from it is a cursor bump.
            // The bucket empties entirely, so no stale filing survives.
            // Run entries keep their stale bucket locations: patching
            // thousands of scattered slab lines costs more than the
            // rare cancellation it would speed up (see `cancel`).
            self.sort_into_run(b);
            self.top = self.run[0];
            self.run_head = 1;
            if self.run.len() == 1 {
                self.run.clear();
                self.run_head = 0;
            }
            return;
        }

        self.scattered_drains += 1;
        let mut drained = std::mem::take(&mut self.scratch);
        debug_assert!(drained.is_empty());
        let bk = &mut self.buckets[b];
        let mut min = bk.first;
        bk.first = Entry::EMPTY;
        std::mem::swap(&mut bk.rest, &mut drained);
        self.occupied.clear(b);

        let mut min_key = min.key();
        for &e in &drained {
            let k = e.key();
            if k < min_key {
                let beaten = min;
                min = e;
                min_key = k;
                self.insert(beaten);
            } else {
                self.insert(e);
            }
        }
        drained.clear();
        self.scratch = drained;
        self.top = min;
    }

    /// Empties bucket `b` into the run, sorted by ascending key, with
    /// `run_head` at zero. The run and scratch buffers must be empty on
    /// entry.
    ///
    /// The bucket's spill vector is *stolen* by swapping it with the
    /// (empty) run, so no entry is copied just to get contiguous input.
    /// Small and equal-tick buckets then sort in place. Large buckets
    /// take one MSD counting scatter: an OR/AND prescan finds the tick
    /// bits that actually vary (bucket-mates agree on every key bit at
    /// or above their filing level, and clustered simulation keys agree
    /// on far more), one stable scatter on the top [`PASS_BITS`]
    /// varying bits splits the bucket into narrow groups — scatter
    /// iterations are independent, so the random writes overlap instead
    /// of serializing like an in-place cycle walk would — and each
    /// group is finished by a full-key comparison sort. Groups average
    /// a handful of entries on scattered workloads, and a
    /// pathologically skewed bucket merely degrades toward the
    /// comparison sort this replaces. The three vectors (bucket spill,
    /// run, scratch) rotate roles, so steady-state drains never
    /// allocate.
    fn sort_into_run(&mut self, b: usize) {
        debug_assert!(self.run.is_empty() && self.run_head == 0);
        debug_assert!(self.scratch.is_empty());
        let bk = &mut self.buckets[b];
        let first = bk.first;
        bk.first = Entry::EMPTY;
        std::mem::swap(&mut bk.rest, &mut self.run);
        self.occupied.clear(b);
        self.run.push(first);
        let n = self.run.len();

        if n < RADIX_MIN {
            self.run.sort_unstable_by_key(|e| e.key());
            return;
        }

        let (mut or_tk, mut and_tk) = (first.tk, first.tk);
        for e in &self.run {
            or_tk |= e.tk;
            and_tk &= e.tk;
        }
        let varying = or_tk ^ and_tk;
        if varying == 0 {
            // Equal ticks: order is by sequence alone. The filing order
            // is already ascending unless re-filed survivors snuck in,
            // which the sort's presortedness check detects in one pass.
            self.run.sort_unstable_by_key(|e| e.seq);
            return;
        }

        // Digit window: when the whole varying span fits in one pass,
        // anchor it at the lowest varying bit so the groups become
        // equal-tick ties; otherwise take the highest PASS_BITS varying
        // bits so the groups are the narrowest tick ranges one pass can
        // isolate. Constant bits cannot affect group membership.
        const MASK: usize = PASS_DIGITS - 1;
        let lo = varying.trailing_zeros();
        let hi = 63 - varying.leading_zeros();
        let sh = if hi - lo < PASS_BITS as u32 {
            lo
        } else {
            hi + 1 - PASS_BITS as u32
        };
        let mut counts = [0u32; PASS_DIGITS];
        for e in &self.run {
            counts[(e.tk >> sh) as usize & MASK] += 1;
        }
        let mut ofs = [0u32; PASS_DIGITS];
        let mut sum = 0u32;
        for d in 0..PASS_DIGITS {
            ofs[d] = sum;
            sum += counts[d];
        }
        let mut dst = std::mem::take(&mut self.scratch);
        dst.resize(n, Entry::EMPTY);
        for e in &self.run {
            let d = (e.tk >> sh) as usize & MASK;
            dst[ofs[d] as usize] = *e;
            ofs[d] += 1;
        }
        let mut start = 0usize;
        for &c in counts.iter() {
            let end = start + c as usize;
            if c > 1 {
                dst[start..end].sort_unstable_by_key(|e| e.key());
            }
            start = end;
        }
        let mut src = std::mem::replace(&mut self.run, dst);
        src.clear();
        self.scratch = src;
    }

    /// Restores the top register after the cached minimum was
    /// *cancelled*: the bound did not advance, so every filing is still
    /// exact and nothing may be re-filed — just promote the minimum of
    /// the lowest occupied bucket, or the run's head, in place.
    fn refill_in_place(&mut self) {
        let Some(b) = self.occupied.lowest() else {
            if let Some(e) = self.run_min() {
                self.run_advance();
                self.top = e;
            }
            return;
        };
        let bk = &self.buckets[b];
        let mut pos = 0;
        let mut min = bk.first;
        let mut min_key = min.key();
        for (i, e) in bk.rest.iter().enumerate() {
            let k = e.key();
            if k < min_key {
                min = *e;
                min_key = k;
                pos = i + 1;
            }
        }
        if let Some(m) = self.run_min() {
            if m.key() < min_key {
                self.top = m;
                self.run_advance();
                return;
            }
        }
        self.top = min;
        self.remove_bucketed(b, pos);
    }
}

/// One elided release: task `task`'s `job_seq`-th arrival, at `ticks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleaseEntry {
    /// Arrival instant in ticks.
    pub ticks: i64,
    /// Index of the releasing task in its task set.
    pub task: u32,
    /// Zero-based arrival count of this task (0 for the phase release).
    pub job_seq: u32,
}

/// A precomputed, shareable release timeline: every periodic arrival
/// inside a horizon, in the exact order a heap-driven simulation would
/// pop them.
///
/// Task releases are closed-form — seed-, policy-, and state-independent
/// — so a simulator can elide them from its [`EventQueue`] entirely: the
/// tape is built once per scenario, shared read-only (`Arc`) across
/// every trial, lane, and worker shard, and consumed by a monotone
/// cursor. The queue then only carries the state-dependent traffic
/// (deadline checks, policy re-evaluations, samples, fault edges).
///
/// **Ordering.** Entries are *not* sorted by `(ticks, task)`: they are
/// emitted in the order the heap-driven run pops arrivals, which is
/// `(ticks, seq)` order under the queue's scheduling discipline (seed
/// all phase arrivals in task order, then each handled arrival schedules
/// its successor). A consumer that allocates one [`EventQueue::alloc_seq`]
/// sequence number per entry at those same points reproduces the
/// heap-driven keys — and therefore the dispatch order — exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleaseTape {
    /// Arrivals in heap pop order; see the type docs for why this is not
    /// plain `(ticks, task)` order.
    entries: Vec<ReleaseEntry>,
    /// Horizon (exclusive, in ticks) the tape was built for. Arrivals at
    /// or past the horizon are clipped.
    horizon_ticks: i64,
    /// Number of tasks in the task set the tape was built from.
    task_count: u32,
}

impl ReleaseTape {
    /// Builds a tape from pre-ordered entries. `entries` must be in heap
    /// pop order and clipped to `horizon_ticks` (see
    /// `TaskSet::release_tape`, which is how tapes are normally made).
    pub fn from_entries(entries: Vec<ReleaseEntry>, horizon_ticks: i64, task_count: u32) -> Self {
        debug_assert!(entries.iter().all(|e| e.ticks < horizon_ticks));
        debug_assert!(entries.windows(2).all(|w| w[0].ticks <= w[1].ticks));
        ReleaseTape {
            entries,
            horizon_ticks,
            task_count,
        }
    }

    /// The arrivals, in heap pop order.
    pub fn entries(&self) -> &[ReleaseEntry] {
        &self.entries
    }

    /// Number of arrivals on the tape.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the horizon holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Horizon (exclusive, in ticks) the tape was built for.
    pub fn horizon_ticks(&self) -> i64 {
        self.horizon_ticks
    }

    /// Number of tasks in the originating task set.
    pub fn task_count(&self) -> usize {
        self.task_count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: i64) -> SimTime {
        SimTime::from_whole_units(u)
    }

    /// The order-preserving 96-bit radix key of `(time, seq)`.
    fn key_of(time: SimTime, seq: u32) -> u128 {
        ((flip(time) as u128) << 32) | seq as u128
    }

    /// Recovers the instant encoded in a radix key.
    fn time_of(key: u128) -> SimTime {
        unflip((key >> 32) as u64)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.schedule(t(5), 2);
        q.schedule(t(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(1), "dead");
        q.schedule(t(2), "alive");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("alive"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(1), ());
        assert_eq!(q.pop(), Some((t(1), ())));
        assert!(!q.cancel(id), "fired events cannot be cancelled");
    }

    #[test]
    fn cancel_after_clear_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(1), ());
        q.clear();
        assert!(!q.cancel(id));
    }

    #[test]
    fn stale_handle_to_recycled_slot_is_false() {
        let mut q = EventQueue::new();
        let old = q.schedule(t(1), 'a');
        q.pop();
        // The freed slot is recycled for the next event; the old handle
        // must not cancel the new occupant.
        let new = q.schedule(t(2), 'b');
        assert!(!q.cancel(old));
        assert_eq!(q.pop(), Some((t(2), 'b')));
        assert!(!q.cancel(new));
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(7), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(7)));
    }

    #[test]
    fn cancel_interior_preserves_order() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..32).map(|i| q.schedule(t(31 - i), 31 - i)).collect();
        // Cancel every third event (values 31, 28, 25, ...).
        for id in ids.iter().step_by(3) {
            assert!(q.cancel(*id));
        }
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<i64> = (0..32).filter(|v| (31 - v) % 3 != 0).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn cancel_the_minimum_promotes_the_next() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.schedule(t(3), 3);
        assert_eq!(q.peek_time(), Some(t(1)));
        assert!(q.cancel(a), "cancelling the cached minimum");
        assert_eq!(q.peek_time(), Some(t(2)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for i in 0..8 {
                q.schedule(t(round * 100 + i), i);
            }
            while q.pop().is_some() {}
        }
        // 80 events passed through, but only 8 slots were ever live.
        assert_eq!(q.slots.len(), 8);
    }

    #[test]
    fn current_time_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(4), ());
        assert_eq!(q.current_time(), None);
        q.pop();
        assert_eq!(q.current_time(), Some(t(4)));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn same_instant_as_current_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.pop();
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId { slot: 99, seq: 99 }));
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..64 {
            q.schedule(t(i), i);
        }
        assert_eq!(q.len(), 64);
        assert_eq!(q.peek_time(), Some(t(0)));
    }

    #[test]
    fn huge_bucket_takes_the_distribution_path() {
        // A first drain of more than SORT_MAX entries exercises the
        // radix distribution path that smaller workloads never reach
        // (they sort into runs instead).
        let n = SORT_MAX as i64 + 17;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_ticks((i * 2_654_435_761) % (n * 7)), i);
        }
        let mut prev = None;
        let mut count = 0;
        while let Some((time, _)) = q.pop() {
            if let Some(p) = prev {
                assert!(time >= p, "pop order regressed");
            }
            prev = Some(time);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.schedule(t(3), 3);
        assert_eq!(q.stats().max_pending, 3);
        q.cancel(a);
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.popped, 1);
        assert_eq!(s.pending, 1);
        assert_eq!(s.cleared, 0);
        q.clear();
        let s = q.stats();
        assert_eq!(s.cleared, 1);
        assert_eq!(s.pending, 0);
        assert_eq!(s.popped, 1, "clear does not count as popping");
    }

    #[test]
    fn stats_count_drain_strategies() {
        let mut q = EventQueue::new();
        // Many same-bucket events force a multi-entry drain on pop; with
        // the run free and the bucket cache-sized it sorts into a run.
        for i in 0..512 {
            q.schedule(t(1000 + i), i);
        }
        while q.pop().is_some() {}
        let s = q.stats();
        assert!(s.drains >= 1);
        assert_eq!(s.drains, s.sorted_drains + s.scattered_drains);
        assert!(s.sorted_drains >= 1, "cache-sized buckets sort into runs");
        assert_eq!(s.popped, 512);
    }

    /// Drives a queue through a deterministic schedule/cancel/pop
    /// workload and returns the full pop order.
    fn exercise(q: &mut EventQueue<u64>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        let ids: Vec<_> = (0..200u64)
            .map(|i| q.schedule(t(((i * 2_654_435_761) % 977) as i64), i))
            .collect();
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        for _ in 0..50 {
            out.extend(q.pop());
        }
        for i in 0..64u64 {
            q.schedule(t(2000 + ((i * 37) % 61) as i64), 1000 + i);
        }
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn reset_replays_bit_identically_to_fresh() {
        let mut fresh = EventQueue::new();
        let baseline = exercise(&mut fresh);
        let baseline_stats = fresh.stats();

        let mut pooled = EventQueue::new();
        let _ = exercise(&mut pooled);
        let warm_capacity = pooled.capacity();
        pooled.reset();
        assert!(pooled.is_empty());
        assert_eq!(pooled.current_time(), None, "reset rewinds the clock");
        assert_eq!(
            pooled.capacity(),
            warm_capacity,
            "reset must keep the slab allocation"
        );
        // Scheduling at t=0 after a reset must work (clear alone keeps
        // the advanced time bound and would panic here).
        pooled.schedule(t(0), 7);
        assert_eq!(pooled.pop(), Some((t(0), 7)));
        pooled.reset();
        let replay = exercise(&mut pooled);
        assert_eq!(replay, baseline, "pop order must replay exactly");
        let mut replay_stats = pooled.stats();
        // Capacity is the one stat allowed to differ (the pool keeps it).
        replay_stats.slab_capacity = baseline_stats.slab_capacity;
        assert_eq!(replay_stats, baseline_stats, "stats must replay exactly");
    }

    #[test]
    fn capacity_and_shrink_to_bound_the_slab() {
        let mut q = EventQueue::new();
        for i in 0..1024u64 {
            q.schedule(t(i as i64), i);
        }
        while q.pop().is_some() {}
        assert!(q.capacity() >= 1024);
        assert_eq!(q.stats().slab_capacity, q.capacity() as u64);
        q.reset();
        q.shrink_to(16);
        assert!(q.capacity() <= 1024, "shrink_to must not grow");
        // Shrinking never drops live entries.
        let mut q = EventQueue::new();
        for i in 0..32u64 {
            q.schedule(t(i as i64), i);
        }
        q.shrink_to(0);
        assert_eq!(q.len(), 32);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn key_round_trips_extreme_times() {
        for ticks in [i64::MIN, -1, 0, 1, i64::MAX] {
            let time = SimTime::from_ticks(ticks);
            assert_eq!(time_of(key_of(time, 42)), time);
        }
    }

    #[test]
    fn key_order_matches_time_then_seq() {
        let early = key_of(SimTime::from_ticks(-5), 9);
        let late = key_of(SimTime::from_ticks(5), 1);
        assert!(early < late, "negative times precede positive");
        let a = key_of(t(3), 1);
        let b = key_of(t(3), 2);
        assert!(a < b, "ties resolve by sequence number");
    }
}
