//! Trace infrastructure: record what happened during a run.
//!
//! Simulators emit domain events (job started, frequency changed, storage
//! depleted, …) into a [`TraceSink`]. Sinks are generic over the record
//! type so each simulator defines its own vocabulary.

use std::fmt::Debug;

use crate::time::SimTime;

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamped<R> {
    /// Instant at which the record was emitted.
    pub time: SimTime,
    /// The domain record.
    pub record: R,
}

/// Receives trace records emitted by a simulator.
///
/// Implementations must be cheap when tracing is unwanted — use
/// [`NullSink`] to discard everything.
pub trait TraceSink<R> {
    /// Records `record` as having occurred at `time`.
    fn record(&mut self, time: SimTime, record: R);

    /// `true` if records are actually retained. Simulators may skip
    /// building expensive records when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// Discards every record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl<R> TraceSink<R> for NullSink {
    #[inline]
    fn record(&mut self, _time: SimTime, _record: R) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Retains every record in memory, in emission order.
///
/// # Examples
///
/// ```
/// use harvest_sim::trace::{TraceSink, VecSink};
/// use harvest_sim::time::SimTime;
///
/// let mut sink = VecSink::new();
/// sink.record(SimTime::from_whole_units(1), "boot");
/// sink.record(SimTime::from_whole_units(2), "run");
/// assert_eq!(sink.records().len(), 2);
/// assert_eq!(sink.records()[1].record, "run");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSink<R> {
    records: Vec<Stamped<R>>,
}

impl<R> VecSink<R> {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink {
            records: Vec::new(),
        }
    }

    /// The records captured so far.
    pub fn records(&self) -> &[Stamped<R>] {
        &self.records
    }

    /// Consumes the sink, returning the captured records.
    pub fn into_records(self) -> Vec<Stamped<R>> {
        self.records
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl<R> TraceSink<R> for VecSink<R> {
    fn record(&mut self, time: SimTime, record: R) {
        self.records.push(Stamped { time, record });
    }
}

/// Record types that expose a small dense *kind* (variant) index, so
/// counting sinks can tally per-variant totals without retaining the
/// records themselves.
pub trait RecordKind {
    /// Number of distinct kinds. Every [`kind_index`](Self::kind_index)
    /// is below this.
    const KIND_COUNT: usize;

    /// Dense index of this record's variant, in `0..KIND_COUNT`.
    fn kind_index(&self) -> usize;
}

/// Per-variant slots a [`CountingSink`] can track; kinds at or above
/// this index fold into the last slot.
pub const MAX_KINDS: usize = 8;

/// Counts records without retaining them — the sweep fast path: run
/// statistics with no per-record allocation. Totals are kept overall
/// *and* per record variant (see [`RecordKind`]), so miss-rate sanity
/// checks no longer need a retaining [`VecSink`].
///
/// Reports `is_enabled() == false` so simulators that build expensive
/// records conditionally can skip construction entirely and account the
/// emission through [`CountingSink::bump_kind`] instead.
///
/// # Examples
///
/// ```
/// use harvest_sim::trace::{CountingSink, RecordKind, TraceSink};
/// use harvest_sim::time::SimTime;
///
/// enum Ev { Boot, Halt }
/// impl RecordKind for Ev {
///     const KIND_COUNT: usize = 2;
///     fn kind_index(&self) -> usize {
///         match self { Ev::Boot => 0, Ev::Halt => 1 }
///     }
/// }
///
/// let mut sink = CountingSink::new();
/// sink.record(SimTime::ZERO, Ev::Boot);
/// sink.bump_kind(1); // an emission whose record was never built
/// assert_eq!(sink.count(), 2);
/// assert_eq!(sink.kind_count(0), 1);
/// assert_eq!(sink.kind_count(1), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    count: u64,
    kinds: [u64; MAX_KINDS],
}

impl CountingSink {
    /// Creates a sink with zero counts.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Number of records seen so far (recorded or bumped).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of records of the given kind seen so far. Kinds at or
    /// above [`MAX_KINDS`] share the last slot.
    pub fn kind_count(&self, kind: usize) -> u64 {
        self.kinds[kind.min(MAX_KINDS - 1)]
    }

    /// Per-kind totals (kinds at or above [`MAX_KINDS`] fold into the
    /// last slot).
    pub fn kind_counts(&self) -> &[u64; MAX_KINDS] {
        &self.kinds
    }

    /// Accounts one emission of the given kind without constructing its
    /// record.
    #[inline]
    pub fn bump_kind(&mut self, kind: usize) {
        self.count += 1;
        self.kinds[kind.min(MAX_KINDS - 1)] += 1;
    }
}

impl<R: RecordKind> TraceSink<R> for CountingSink {
    #[inline]
    fn record(&mut self, _time: SimTime, record: R) {
        self.bump_kind(record.kind_index());
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Adapts a closure into a sink — handy for filtering or streaming.
///
/// # Examples
///
/// ```
/// use harvest_sim::trace::{FnSink, TraceSink};
/// use harvest_sim::time::SimTime;
///
/// let mut count = 0u32;
/// {
///     let mut sink = FnSink::new(|_, _: &str| count += 1);
///     sink.record(SimTime::ZERO, "x");
/// }
/// assert_eq!(count, 1);
/// ```
pub struct FnSink<F>(F);

impl<F> FnSink<F> {
    /// Wraps `f` as a sink.
    pub fn new(f: F) -> Self {
        FnSink(f)
    }
}

impl<F> Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnSink(..)")
    }
}

impl<R, F: FnMut(SimTime, R)> TraceSink<R> for FnSink<F> {
    fn record(&mut self, time: SimTime, record: R) {
        (self.0)(time, record);
    }
}

impl<R, S: TraceSink<R> + ?Sized> TraceSink<R> for &mut S {
    fn record(&mut self, time: SimTime, record: R) {
        (**self).record(time, record);
    }

    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_reports_disabled() {
        let sink = NullSink;
        assert!(!TraceSink::<u8>::is_enabled(&sink));
    }

    #[test]
    fn vec_sink_preserves_order_and_time() {
        let mut sink = VecSink::new();
        sink.record(SimTime::from_whole_units(3), 'a');
        sink.record(SimTime::from_whole_units(1), 'b'); // sinks don't sort
        let rs = sink.records();
        assert_eq!(rs[0].record, 'a');
        assert_eq!(rs[1].time, SimTime::from_whole_units(1));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[derive(Debug, Clone, Copy)]
    enum Kinded {
        A,
        B,
    }

    impl RecordKind for Kinded {
        const KIND_COUNT: usize = 2;
        fn kind_index(&self) -> usize {
            match self {
                Kinded::A => 0,
                Kinded::B => 1,
            }
        }
    }

    #[test]
    fn counting_sink_counts_without_retaining() {
        let mut sink = CountingSink::new();
        assert!(!TraceSink::<Kinded>::is_enabled(&sink));
        sink.record(SimTime::ZERO, Kinded::A);
        sink.record(SimTime::from_whole_units(2), Kinded::B);
        sink.bump_kind(1);
        assert_eq!(sink.count(), 3);
    }

    #[test]
    fn counting_sink_tracks_per_variant_totals() {
        let mut sink = CountingSink::new();
        sink.record(SimTime::ZERO, Kinded::A);
        sink.record(SimTime::ZERO, Kinded::B);
        sink.record(SimTime::ZERO, Kinded::B);
        assert_eq!(sink.kind_count(0), 1);
        assert_eq!(sink.kind_count(1), 2);
        assert_eq!(sink.kind_counts().iter().sum::<u64>(), sink.count());
        // Out-of-range kinds fold into the last slot instead of panicking.
        sink.bump_kind(MAX_KINDS + 5);
        assert_eq!(sink.kind_count(MAX_KINDS - 1), 1);
    }

    #[test]
    fn into_records_round_trips() {
        let mut sink = VecSink::new();
        sink.record(SimTime::ZERO, 7u32);
        let v = sink.into_records();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].record, 7);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut sink = VecSink::new();
        {
            let fwd = &mut sink;
            fwd.record(SimTime::ZERO, 1u8);
            assert!(fwd.is_enabled());
        }
        assert_eq!(sink.len(), 1);
    }
}
