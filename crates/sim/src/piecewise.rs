//! Piecewise-constant functions of simulated time.
//!
//! Harvest-power profiles are represented as piecewise-constant functions
//! so that every energy integral `∫ P(t) dt` and every linear crossing
//! time can be evaluated in closed form — the whole simulation stack stays
//! exact and deterministic.
//!
//! # Cost model
//!
//! Construction precomputes a cumulative-integral table at the
//! breakpoints, so [`PiecewiseConstant::integrate`] is a difference of
//! two closed-form antiderivative evaluations (`F(t2) − F(t1)`), each one
//! binary search — `O(log n)` in the segment count, independent of how
//! many segments the window spans. Extension tails are folded in closed
//! form: a full [`Extension::Cycle`] period integrates to a constant, so
//! cyclic integrals never unroll periods.
//!
//! Callers that sweep time monotonically (simulators, iterators) can hold
//! a [`Cursor`]: it remembers the last segment touched and re-anchors
//! with a short forward gallop, making `value_at` / `integrate` /
//! breakpoint queries amortized `O(1)` while staying `O(log n)` worst
//! case for arbitrary access.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// How a [`PiecewiseConstant`] behaves outside the interval covered by its
/// breakpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Extension {
    /// Hold the first value before the domain and the last value after it.
    #[default]
    Hold,
    /// The function is zero outside its domain.
    Zero,
    /// The profile repeats with its domain length as period.
    ///
    /// The domain must have positive length for this to be meaningful;
    /// construction enforces it.
    Cycle,
}

/// Error constructing a [`PiecewiseConstant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiecewiseError {
    /// The breakpoint list was empty or had fewer entries than values
    /// require (`n + 1` breakpoints for `n` values).
    LengthMismatch {
        /// Number of breakpoints supplied.
        breakpoints: usize,
        /// Number of segment values supplied.
        values: usize,
    },
    /// Breakpoints were not strictly increasing.
    NotIncreasing {
        /// Index of the first offending breakpoint.
        index: usize,
    },
    /// A segment value was NaN or infinite.
    NonFiniteValue {
        /// Index of the offending value.
        index: usize,
    },
    /// [`Extension::Cycle`] requires a domain of positive length.
    EmptyCycle,
}

impl fmt::Display for PiecewiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiecewiseError::LengthMismatch {
                breakpoints,
                values,
            } => write!(
                f,
                "piecewise function needs exactly one more breakpoint than values \
                 (got {breakpoints} breakpoints for {values} values)"
            ),
            PiecewiseError::NotIncreasing { index } => {
                write!(
                    f,
                    "breakpoints must be strictly increasing (violated at index {index})"
                )
            }
            PiecewiseError::NonFiniteValue { index } => {
                write!(f, "segment value at index {index} is not finite")
            }
            PiecewiseError::EmptyCycle => {
                write!(f, "cyclic extension requires a domain of positive length")
            }
        }
    }
}

impl std::error::Error for PiecewiseError {}

/// A piecewise-constant function `f: SimTime → f64`.
///
/// The function takes value `values[i]` on the half-open interval
/// `[breakpoints[i], breakpoints[i+1])`; behaviour outside
/// `[breakpoints[0], breakpoints[n])` is governed by the [`Extension`].
///
/// # Examples
///
/// ```
/// use harvest_sim::piecewise::{Extension, PiecewiseConstant};
/// use harvest_sim::time::SimTime;
///
/// // 2.0 on [0,10), 0.5 on [10,20), held constant outside.
/// let f = PiecewiseConstant::new(
///     vec![SimTime::ZERO, SimTime::from_whole_units(10), SimTime::from_whole_units(20)],
///     vec![2.0, 0.5],
///     Extension::Hold,
/// )?;
/// assert_eq!(f.value_at(SimTime::from_whole_units(3)), 2.0);
/// assert_eq!(f.value_at(SimTime::from_whole_units(10)), 0.5);
/// // ∫ over [5,15) = 5·2.0 + 5·0.5
/// let e = f.integrate(SimTime::from_whole_units(5), SimTime::from_whole_units(15));
/// assert!((e - 12.5).abs() < 1e-12);
/// # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PiecewiseConstant {
    breakpoints: Vec<SimTime>,
    values: Vec<f64>,
    extension: Extension,
    /// `prefix[i] = ∫ f over [breakpoints[0], breakpoints[i])`; one entry
    /// per breakpoint, rebuilt on construction and deserialization.
    prefix: Vec<f64>,
    vmin: f64,
    vmax: f64,
    /// Common breakpoint spacing in ticks when the grid is uniform, else
    /// 0. Detected once at construction so [`Self::uniform_grid`] is
    /// `O(1)`.
    uniform_dt: i64,
}

/// Equality is over the semantic fields only; the prefix table is a
/// deterministic function of them.
impl PartialEq for PiecewiseConstant {
    fn eq(&self, other: &Self) -> bool {
        self.breakpoints == other.breakpoints
            && self.values == other.values
            && self.extension == other.extension
    }
}

impl Serialize for PiecewiseConstant {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("breakpoints".to_string(), self.breakpoints.to_value()),
            ("values".to_string(), self.values.to_value()),
            ("extension".to_string(), self.extension.to_value()),
        ])
    }
}

impl Deserialize for PiecewiseConstant {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let breakpoints = serde::de_field(v, "breakpoints")?;
        let values = serde::de_field(v, "values")?;
        let extension = serde::de_field(v, "extension")?;
        PiecewiseConstant::new(breakpoints, values, extension)
            .map_err(|e| serde::DeError::msg(format!("invalid piecewise function: {e}")))
    }
}

/// One maximal constant stretch of a [`PiecewiseConstant`] restricted to a
/// query window, as yielded by [`PiecewiseConstant::segments_between`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// Function value over `[start, end)`.
    pub value: f64,
}

impl Segment {
    /// Length of the segment.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Integral of the function over this segment.
    #[inline]
    pub fn integral(&self) -> f64 {
        self.value * self.duration().as_units()
    }
}

/// Lookup state for monotone time access.
///
/// A `Cursor` remembers the segment (and, under [`Extension::Cycle`], the
/// period image) of the last query it served. When the next query lands
/// in the same or a nearby later segment — the overwhelmingly common case
/// for simulators that sweep time forward — the `*_with` methods re-anchor
/// with a short forward gallop instead of a fresh binary search, making
/// `value_at` / `integrate` / breakpoint lookups amortized `O(1)`.
/// Queries that jump backwards or far ahead simply fall back to the
/// `O(log n)` search, so a cursor is never *required* to be monotone —
/// it is only fastest that way.
///
/// Cursors are plain data: cheap to copy, valid for the lifetime of the
/// profile they were created against, and independent of each other.
/// Using a cursor against a *different* profile is memory-safe but may
/// cost an extra fallback search; create one cursor per profile.
///
/// # Examples
///
/// ```
/// use harvest_sim::piecewise::PiecewiseConstant;
/// use harvest_sim::time::SimTime;
///
/// let f = PiecewiseConstant::constant(2.0);
/// let mut cur = f.cursor();
/// let mut total = 0.0;
/// for t in 0..100 {
///     let (a, b) = (SimTime::from_whole_units(t), SimTime::from_whole_units(t + 1));
///     total += f.integrate_with(&mut cur, a, b);
/// }
/// assert!((total - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Cursor {
    /// Last segment index served.
    idx: usize,
    /// Period image the index belongs to (always 0 unless `Cycle`).
    period: i64,
    /// Whether the hint has been populated yet.
    init: bool,
    /// Lookup and crossing-solver observability counters.
    stats: CursorStats,
}

impl Cursor {
    /// Accumulated lookup/solver counters; see [`CursorStats`].
    pub fn stats(&self) -> CursorStats {
        self.stats
    }
}

/// Observability counters accumulated by a [`Cursor`] as it serves
/// lookups and crossing queries. All counters wrap on overflow (they
/// are diagnostics, not accounting).
///
/// The lookup counters partition [`locates`](Self::locates): a call
/// either hits the hinted segment exactly, gallops forward (adding the
/// number of segments skipped to `gallop_segments`), jumps backwards,
/// or runs without a usable hint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorStats {
    /// Hinted segment lookups served.
    pub locates: u32,
    /// Lookups answered by the hinted segment itself (the O(1) path).
    pub hint_hits: u32,
    /// Total segments advanced past the hint by the gallop search.
    pub gallop_segments: u32,
    /// Lookups that galloped forward at least one segment.
    pub gallops: u32,
    /// Lookups that jumped backwards (hint discarded).
    pub backward_jumps: u32,
    /// Lookups with no usable hint (fresh cursor or period change).
    pub fresh_searches: u32,
    /// Crossing queries answered by the O(1) rate-bound reject.
    pub cross_reject: u32,
    /// Crossing queries answered by monotone tick bisection.
    pub cross_bisect: u32,
    /// Crossing queries answered by the clamped segment scan.
    pub cross_scan: u32,
    /// Crossing queries answered by the cyclic period-skip scan.
    pub cross_cyclic: u32,
}

impl CursorStats {
    /// Sums another cursor's counters into this one (wrapping).
    pub fn merge(&mut self, other: &CursorStats) {
        self.locates = self.locates.wrapping_add(other.locates);
        self.hint_hits = self.hint_hits.wrapping_add(other.hint_hits);
        self.gallop_segments = self.gallop_segments.wrapping_add(other.gallop_segments);
        self.gallops = self.gallops.wrapping_add(other.gallops);
        self.backward_jumps = self.backward_jumps.wrapping_add(other.backward_jumps);
        self.fresh_searches = self.fresh_searches.wrapping_add(other.fresh_searches);
        self.cross_reject = self.cross_reject.wrapping_add(other.cross_reject);
        self.cross_bisect = self.cross_bisect.wrapping_add(other.cross_bisect);
        self.cross_scan = self.cross_scan.wrapping_add(other.cross_scan);
        self.cross_cyclic = self.cross_cyclic.wrapping_add(other.cross_cyclic);
    }
}

impl PiecewiseConstant {
    /// Creates a piecewise-constant function.
    ///
    /// `breakpoints` must be strictly increasing and contain exactly one
    /// more element than `values`.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] on length mismatch, non-monotone
    /// breakpoints, non-finite values, or an empty domain with
    /// [`Extension::Cycle`].
    pub fn new(
        breakpoints: Vec<SimTime>,
        values: Vec<f64>,
        extension: Extension,
    ) -> Result<Self, PiecewiseError> {
        if breakpoints.len() != values.len() + 1 || values.is_empty() {
            return Err(PiecewiseError::LengthMismatch {
                breakpoints: breakpoints.len(),
                values: values.len(),
            });
        }
        for (i, w) in breakpoints.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(PiecewiseError::NotIncreasing { index: i + 1 });
            }
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(PiecewiseError::NonFiniteValue { index });
        }
        if extension == Extension::Cycle && breakpoints.first() == breakpoints.last() {
            return Err(PiecewiseError::EmptyCycle);
        }
        Ok(Self::build(breakpoints, values, extension))
    }

    /// Assembles the struct and its derived caches from validated parts.
    fn build(breakpoints: Vec<SimTime>, values: Vec<f64>, extension: Extension) -> Self {
        let mut prefix = Vec::with_capacity(breakpoints.len());
        let mut acc = 0.0;
        prefix.push(0.0);
        for (i, &v) in values.iter().enumerate() {
            acc += v * (breakpoints[i + 1] - breakpoints[i]).as_units();
            prefix.push(acc);
        }
        let vmin = values.iter().copied().fold(f64::INFINITY, f64::min);
        let vmax = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let dt = (breakpoints[1] - breakpoints[0]).as_ticks();
        let uniform_dt = if breakpoints
            .windows(2)
            .all(|w| (w[1] - w[0]).as_ticks() == dt)
        {
            dt
        } else {
            0
        };
        PiecewiseConstant {
            breakpoints,
            values,
            extension,
            prefix,
            vmin,
            vmax,
            uniform_dt,
        }
    }

    /// A function that is `value` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn constant(value: f64) -> Self {
        assert!(value.is_finite(), "constant value must be finite");
        Self::build(
            vec![SimTime::ZERO, SimTime::from_whole_units(1)],
            vec![value],
            Extension::Hold,
        )
    }

    /// Builds a profile from equally spaced samples starting at `start`,
    /// each sample holding for `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] if `samples` is empty, `dt` is not
    /// positive, or a sample is not finite.
    pub fn from_samples(
        start: SimTime,
        dt: SimDuration,
        samples: Vec<f64>,
        extension: Extension,
    ) -> Result<Self, PiecewiseError> {
        if samples.is_empty() || !dt.is_positive() {
            return Err(PiecewiseError::LengthMismatch {
                breakpoints: 0,
                values: samples.len(),
            });
        }
        let mut breakpoints = Vec::with_capacity(samples.len() + 1);
        let mut t = start;
        for _ in 0..=samples.len() {
            breakpoints.push(t);
            t += dt;
        }
        PiecewiseConstant::new(breakpoints, samples, extension)
    }

    /// Start of the explicitly defined domain.
    #[inline]
    pub fn domain_start(&self) -> SimTime {
        self.breakpoints[0]
    }

    /// End of the explicitly defined domain (exclusive).
    #[inline]
    pub fn domain_end(&self) -> SimTime {
        *self.breakpoints.last().expect("non-empty by construction")
    }

    /// The extension rule in force outside the domain.
    #[inline]
    pub fn extension(&self) -> Extension {
        self.extension
    }

    /// Number of constant segments in the explicit domain.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.values.len()
    }

    /// The segment values in the explicit domain.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Integral of one full domain span (one period under
    /// [`Extension::Cycle`]).
    #[inline]
    fn total(&self) -> f64 {
        *self.prefix.last().expect("non-empty by construction")
    }

    /// Mean value of the function over its explicit domain.
    pub fn domain_mean(&self) -> f64 {
        let len = (self.domain_end() - self.domain_start()).as_units();
        self.total() / len
    }

    /// Maximum value over the explicit domain.
    #[inline]
    pub fn domain_max(&self) -> f64 {
        self.vmax
    }

    /// Minimum value over the explicit domain.
    #[inline]
    pub fn domain_min(&self) -> f64 {
        self.vmin
    }

    /// Creates a fresh [`Cursor`] for this profile.
    #[inline]
    pub fn cursor(&self) -> Cursor {
        Cursor::default()
    }

    /// The `O(1)` direct-index view over this profile, available when the
    /// breakpoints are equally spaced (as built by
    /// [`Self::from_samples`]) and the extension is [`Extension::Hold`].
    ///
    /// Every view method computes the same IEEE expressions as its
    /// cursor-driven counterpart — only the breakpoint *search* is
    /// replaced by one integer division — so results are bit-identical
    /// (pinned by the `grid_view_*` tests). Batched sweep lanes use one
    /// view per lane over the shared prefix table instead of threading
    /// per-lane [`Cursor`]s.
    #[inline]
    pub fn uniform_grid(&self) -> Option<UniformGridView<'_>> {
        if self.uniform_dt == 0 || self.extension != Extension::Hold {
            return None;
        }
        Some(UniformGridView {
            f: self,
            start_ticks: self.domain_start().as_ticks(),
            end_ticks: self.domain_end().as_ticks(),
            dt_ticks: self.uniform_dt,
            inv_dt: 1.0 / self.uniform_dt as f64,
        })
    }

    /// Maps `t` into the explicit domain, returning the folded instant,
    /// the period image it fell in (non-zero only under `Cycle`), and
    /// whether the original instant was outside a non-cyclic domain.
    #[inline]
    fn fold_with_period(&self, t: SimTime) -> (SimTime, i64, Outside) {
        let start = self.domain_start();
        let end = self.domain_end();
        if t >= start && t < end {
            return (t, 0, Outside::Inside);
        }
        match self.extension {
            Extension::Cycle => {
                let period = (end - start).as_ticks();
                let rel = (t - start).as_ticks();
                let k = rel.div_euclid(period);
                let r = rel.rem_euclid(period);
                (start + SimDuration::from_ticks(r), k, Outside::Inside)
            }
            _ if t < start => (t, 0, Outside::Before),
            _ => (t, 0, Outside::After),
        }
    }

    /// Segment index containing `t`, which must lie inside the explicit
    /// domain. `hint` is the caller's last known index: the search
    /// gallops forward from it with doubling strides and binary-searches
    /// only the bracketed range, so a lookup `d` segments past the hint
    /// costs `O(log d)` — `O(1)` for the repeat/adjacent hits that
    /// dominate monotone sweeps — instead of `O(log n)` from scratch.
    #[inline]
    fn locate(&self, t: SimTime, hint: Option<usize>) -> usize {
        let bps = &self.breakpoints;
        let last = self.values.len() - 1;
        if let Some(h) = hint {
            let lo = h.min(last);
            if bps[lo] <= t {
                if lo == last || bps[lo + 1] > t {
                    return lo;
                }
                // Gallop: find the first `lo + stride` past `t`, then
                // binary-search inside the bracket.
                let mut stride = 1usize;
                let mut below = lo + 1; // invariant: bps[below] <= t
                loop {
                    let probe = below.saturating_add(stride).min(last);
                    if bps[probe] <= t {
                        if probe == last {
                            return last;
                        }
                        below = probe;
                        stride *= 2;
                    } else {
                        // bps[below] <= t < bps[probe]
                        let range = &bps[below + 1..probe];
                        return below + range.partition_point(|&b| b <= t);
                    }
                }
            }
        }
        // partition_point returns the count of breakpoints <= t;
        // segment index is that count minus one.
        (bps.partition_point(|&b| b <= t) - 1).min(last)
    }

    /// [`locate`](Self::locate) driven by (and refreshing) a cursor. The
    /// hint is only trusted within the same period image.
    #[inline]
    fn locate_with(&self, cur: &mut Cursor, folded: SimTime, period: i64) -> usize {
        let hint = if cur.init && cur.period == period {
            Some(cur.idx)
        } else {
            None
        };
        let idx = self.locate(folded, hint);
        let mut stats = cur.stats;
        stats.locates = stats.locates.wrapping_add(1);
        match hint {
            Some(h) => {
                let lo = h.min(self.values.len() - 1);
                if idx == lo {
                    stats.hint_hits = stats.hint_hits.wrapping_add(1);
                } else if idx > lo {
                    stats.gallops = stats.gallops.wrapping_add(1);
                    stats.gallop_segments = stats.gallop_segments.wrapping_add((idx - lo) as u32);
                } else {
                    stats.backward_jumps = stats.backward_jumps.wrapping_add(1);
                }
            }
            None => stats.fresh_searches = stats.fresh_searches.wrapping_add(1),
        }
        *cur = Cursor {
            idx,
            period,
            init: true,
            stats,
        };
        idx
    }

    /// Value of the function at instant `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        self.value_at_with(&mut Cursor::default(), t)
    }

    /// [`value_at`](Self::value_at) with cursor acceleration.
    pub fn value_at_with(&self, cur: &mut Cursor, t: SimTime) -> f64 {
        let (folded, period, outside) = self.fold_with_period(t);
        match outside {
            Outside::Before => match self.extension {
                Extension::Hold => self.values[0],
                Extension::Zero => 0.0,
                Extension::Cycle => unreachable!("cycle folding maps into domain"),
            },
            Outside::After => match self.extension {
                Extension::Hold => *self.values.last().expect("non-empty"),
                Extension::Zero => 0.0,
                Extension::Cycle => unreachable!("cycle folding maps into domain"),
            },
            Outside::Inside => self.values[self.locate_with(cur, folded, period)],
        }
    }

    /// Cumulative integral `F(t) = ∫ f over [domain_start, t)` (signed:
    /// negative for `t` before the domain start), with all three
    /// extensions folded in closed form. A full `Cycle` period is the
    /// constant `total()`, so no periods are ever unrolled.
    fn cum_with(&self, cur: &mut Cursor, t: SimTime) -> f64 {
        let start = self.domain_start();
        let end = self.domain_end();
        if t >= start && t < end {
            let idx = self.locate_with(cur, t, 0);
            return self.prefix[idx] + self.values[idx] * (t - self.breakpoints[idx]).as_units();
        }
        match self.extension {
            Extension::Hold => {
                if t < start {
                    self.values[0] * (t - start).as_units()
                } else {
                    self.total() + self.values[self.values.len() - 1] * (t - end).as_units()
                }
            }
            Extension::Zero => {
                if t < start {
                    0.0
                } else {
                    self.total()
                }
            }
            Extension::Cycle => {
                let period = (end - start).as_ticks();
                let rel = (t - start).as_ticks();
                let k = rel.div_euclid(period);
                let r = rel.rem_euclid(period);
                let folded = start + SimDuration::from_ticks(r);
                let idx = self.locate_with(cur, folded, k);
                let inner = self.prefix[idx]
                    + self.values[idx] * (folded - self.breakpoints[idx]).as_units();
                k as f64 * self.total() + inner
            }
        }
    }

    #[inline]
    fn cum(&self, t: SimTime) -> f64 {
        self.cum_with(&mut Cursor::default(), t)
    }

    /// Exact integral of the function over `[t1, t2)`, computed as the
    /// antiderivative difference `F(t2) − F(t1)` — one binary search per
    /// endpoint, independent of how many segments the window spans.
    ///
    /// Returns a negated integral when `t2 < t1` (exactly: IEEE
    /// subtraction is antisymmetric).
    pub fn integrate(&self, t1: SimTime, t2: SimTime) -> f64 {
        self.cum(t2) - self.cum(t1)
    }

    /// [`integrate`](Self::integrate) with cursor acceleration: both
    /// endpoints resolve through `cur`, so windows that slide forward in
    /// time cost amortized `O(1)`.
    pub fn integrate_with(&self, cur: &mut Cursor, t1: SimTime, t2: SimTime) -> f64 {
        let a = self.cum_with(cur, t1);
        let b = self.cum_with(cur, t2);
        b - a
    }

    /// Reference implementation of [`integrate`](Self::integrate) that
    /// walks every segment in the window.
    ///
    /// Kept as the ground truth for property tests and as the baseline
    /// for benchmarks; `O(segments in window)` instead of `O(log n)`.
    pub fn integrate_naive(&self, t1: SimTime, t2: SimTime) -> f64 {
        if t2 < t1 {
            return -self.integrate_naive(t2, t1);
        }
        self.segments_between(t1, t2).map(|s| s.integral()).sum()
    }

    /// Iterates the maximal constant stretches of the function restricted
    /// to the window `[t1, t2)`, in order, covering it exactly.
    ///
    /// The iterator carries its own [`Cursor`], so each step is `O(1)`
    /// after the first.
    pub fn segments_between(&self, t1: SimTime, t2: SimTime) -> Segments<'_> {
        self.segments_between_with(Cursor::default(), t1, t2)
    }

    /// Like [`Self::segments_between`], but seeds the iterator's internal
    /// [`Cursor`] with `cur` so callers that walk consecutive windows can
    /// thread position across calls (retrieve the final state with
    /// [`Segments::state`]). The yielded segments are identical for any
    /// seed cursor; only the lookup cost changes.
    pub fn segments_between_with(&self, cur: Cursor, t1: SimTime, t2: SimTime) -> Segments<'_> {
        Segments {
            f: self,
            cursor: t1,
            end: t2,
            cur,
        }
    }

    /// Earliest `t ≥ from` at which the *accumulated* value
    /// `acc(t) = initial + ∫_from^t (f(u) + offset) du`, clamped to
    /// `[0, cap]` along the way, first reaches `target`.
    ///
    /// This is the primitive behind "when does the storage fill/empty"
    /// queries: `offset` is the (negated) constant drain, `cap` the
    /// storage capacity. Returns `None` if the level never reaches
    /// `target` before `horizon`.
    ///
    /// When the net rate `f + offset` cannot change sign the level is
    /// monotone, clamping cannot precede the crossing, and the answer is
    /// found by bisecting the prefix-sum antiderivative — `O(log n)`
    /// searches instead of a segment scan. Unreachable targets
    /// (net rate bounded away from the required direction) return `None`
    /// in `O(1)`. Only genuinely non-monotone queries fall back to a
    /// clamped segment scan, which under [`Extension::Cycle`] skips
    /// provably event-free periods in closed form.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative, or `initial`/`target` fall outside
    /// `[0, cap]`.
    pub fn first_accumulation_crossing(
        &self,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        cap: f64,
        target: f64,
    ) -> Option<SimTime> {
        self.first_accumulation_crossing_with(
            &mut Cursor::default(),
            from,
            horizon,
            initial,
            offset,
            cap,
            target,
        )
    }

    /// [`first_accumulation_crossing`](Self::first_accumulation_crossing)
    /// with cursor acceleration for the `from` endpoint — useful when
    /// crossing queries are issued at monotonically increasing instants.
    // One argument per scalar of the accumulation problem; bundling them
    // would only obscure the call sites.
    #[allow(clippy::too_many_arguments)]
    pub fn first_accumulation_crossing_with(
        &self,
        cur: &mut Cursor,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        cap: f64,
        target: f64,
    ) -> Option<SimTime> {
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!(
            (0.0..=cap).contains(&initial),
            "initial level outside [0, cap]"
        );
        assert!(
            (0.0..=cap).contains(&target),
            "target level outside [0, cap]"
        );
        if initial == target {
            return Some(from);
        }
        if from >= horizon {
            return None;
        }
        // Bounds on the net rate f + offset over all time. Under `Zero`
        // the tails contribute rate `offset` alone, so fold 0 into the
        // value bounds conservatively.
        let (lo, hi) = match self.extension {
            Extension::Zero => (self.vmin.min(0.0), self.vmax.max(0.0)),
            _ => (self.vmin, self.vmax),
        };
        let (rate_min, rate_max) = (lo + offset, hi + offset);
        // The old scanner only crossed upward in segments with rate > 0
        // and downward with rate < 0; a rate bound pinned on the wrong
        // side of zero decides the query in O(1).
        if (target > initial && rate_max <= 0.0) || (target < initial && rate_min >= 0.0) {
            cur.stats.cross_reject = cur.stats.cross_reject.wrapping_add(1);
            return None;
        }
        let monotone =
            (target > initial && rate_min >= 0.0) || (target < initial && rate_max <= 0.0);
        if monotone {
            cur.stats.cross_bisect = cur.stats.cross_bisect.wrapping_add(1);
            return self.monotone_crossing(cur, from, horizon, initial, offset, target);
        }
        let mut scan = ClampedScan {
            level: initial,
            offset,
            cap,
            target,
        };
        match self.extension {
            Extension::Cycle => {
                cur.stats.cross_cyclic = cur.stats.cross_cyclic.wrapping_add(1);
                self.scan_crossing_cyclic(&mut scan, from, horizon)
            }
            _ => {
                cur.stats.cross_scan = cur.stats.cross_scan.wrapping_add(1);
                scan.run(self, from, horizon, None)
            }
        }
    }

    /// Reference implementation of
    /// [`first_accumulation_crossing`](Self::first_accumulation_crossing):
    /// a linear scan over every segment in `[from, horizon)`.
    ///
    /// Kept as the ground truth for property tests and as the baseline
    /// for benchmarks.
    ///
    /// # Panics
    ///
    /// Same contract as the fast path.
    pub fn first_accumulation_crossing_naive(
        &self,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        cap: f64,
        target: f64,
    ) -> Option<SimTime> {
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!(
            (0.0..=cap).contains(&initial),
            "initial level outside [0, cap]"
        );
        assert!(
            (0.0..=cap).contains(&target),
            "target level outside [0, cap]"
        );
        if initial == target {
            return Some(from);
        }
        let mut scan = ClampedScan {
            level: initial,
            offset,
            cap,
            target,
        };
        scan.run(self, from, horizon, None)
    }

    /// Crossing solve for a provably monotone level trajectory: clamping
    /// cannot strike before the crossing, so the accumulated gain
    /// `g(t) = F(t) − F(from) + offset·(t − from)` is monotone and the
    /// earliest tick reaching the threshold is found by bisection. Each
    /// probe is one prefix-table evaluation, so the whole solve is
    /// `O(log T · log n)` for a horizon `T` ticks away — no segment is
    /// ever walked.
    fn monotone_crossing(
        &self,
        cur: &mut Cursor,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        target: f64,
    ) -> Option<SimTime> {
        let needed = target - initial;
        let cum_from = self.cum_with(cur, from);
        let g_at = |t: SimTime| self.cum(t) - cum_from + offset * (t - from).as_units();
        // Mirror the scanner's crossing tolerance of ±1e-15.
        let reached = |g: f64| {
            if needed > 0.0 {
                g >= needed - 1e-15
            } else {
                g <= needed + 1e-15
            }
        };
        if reached(0.0) {
            // |needed| ≤ 1e-15: within tolerance immediately.
            return Some(from);
        }
        if !reached(g_at(horizon)) {
            return None;
        }
        let (mut lo, mut hi) = (from.as_ticks(), horizon.as_ticks());
        // Invariant: not reached at lo, reached at hi.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if reached(g_at(SimTime::from_ticks(mid))) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(SimTime::from_ticks(hi))
    }

    /// Clamped scan under [`Extension::Cycle`]: scans period by period,
    /// but (a) stops as soon as one full period returns to its entry
    /// level without crossing — the trajectory is then exactly periodic
    /// and will never cross — and (b) after probing one clamp-free
    /// period, skips every future period whose extrapolated excursion
    /// envelope provably avoids the target, the floor, and the cap.
    fn scan_crossing_cyclic(
        &self,
        scan: &mut ClampedScan,
        from: SimTime,
        horizon: SimTime,
    ) -> Option<SimTime> {
        let start = self.domain_start();
        let period_ticks = (self.domain_end() - start).as_ticks();
        let period = SimDuration::from_ticks(period_ticks);
        let mut t = from;
        // Align to the next period boundary so probes always cover one
        // full period at a fixed phase.
        let rel = (t - start).as_ticks().rem_euclid(period_ticks);
        if rel != 0 {
            let boundary = t + SimDuration::from_ticks(period_ticks - rel);
            if let Some(hit) = scan.run(self, t, boundary.min(horizon), None) {
                return Some(hit);
            }
            if boundary >= horizon {
                return None;
            }
            t = boundary;
        }
        while t < horizon {
            let pe = t + period;
            if pe > horizon {
                return scan.run(self, t, horizon, None);
            }
            let entry = scan.level;
            let mut probe = Probe {
                lo: entry,
                hi: entry,
                clamped: false,
            };
            if let Some(hit) = scan.run(self, t, pe, Some(&mut probe)) {
                return Some(hit);
            }
            t = pe;
            if scan.level == entry {
                // Fixed point of the one-period level map: the trajectory
                // repeats this (crossing-free) period forever.
                return None;
            }
            if probe.clamped {
                continue;
            }
            let delta = scan.level - entry;
            let (e_lo, e_hi) = (probe.lo - entry, probe.hi - entry);
            // Safety margin dominating both the scanner's ±1e-15 crossing
            // tolerance and the extrapolation dust of `level + j·delta`
            // versus the iterated sum.
            let margin = 1e-9 * (1.0 + scan.cap.abs() + scan.target.abs());
            let avail = (horizon - t).as_ticks() / period_ticks;
            let k = avail
                .min(periods_while_at_most(
                    scan.level + e_hi,
                    delta,
                    scan.cap - margin,
                ))
                .min(periods_while_at_least(scan.level + e_lo, delta, margin))
                .min(
                    periods_while_at_most(scan.level + e_hi, delta, scan.target - margin).max(
                        periods_while_at_least(scan.level + e_lo, delta, scan.target + margin),
                    ),
                );
            if k > 0 {
                scan.level += k as f64 * delta;
                t += SimDuration::from_ticks(k * period_ticks);
            }
        }
        None
    }
}

/// Number of leading periods `j = 0, 1, …` for which `base + j·delta`
/// stays `≤ bound`. Saturates when the drift never violates the bound.
fn periods_while_at_most(base: f64, delta: f64, bound: f64) -> i64 {
    if base > bound {
        return 0;
    }
    if delta <= 0.0 {
        return i64::MAX;
    }
    let j = ((bound - base) / delta).floor();
    if j.is_nan() || j < 0.0 {
        return 0;
    }
    if j >= i64::MAX as f64 {
        return i64::MAX;
    }
    // j is the last index still within the bound, so j + 1 periods hold.
    j as i64 + 1
}

/// Number of leading periods `j = 0, 1, …` for which `base + j·delta`
/// stays `≥ bound`.
fn periods_while_at_least(base: f64, delta: f64, bound: f64) -> i64 {
    if base < bound {
        return 0;
    }
    if delta >= 0.0 {
        return i64::MAX;
    }
    let j = ((base - bound) / -delta).floor();
    if j.is_nan() || j < 0.0 {
        return 0;
    }
    if j >= i64::MAX as f64 {
        return i64::MAX;
    }
    j as i64 + 1
}

/// Unclamped excursion envelope observed while scanning one full period.
struct Probe {
    lo: f64,
    hi: f64,
    clamped: bool,
}

/// The clamped accumulation scanner: the exact per-segment arithmetic of
/// the original `first_accumulation_crossing`, preserved verbatim so the
/// fast paths layered on top stay tick-identical with the historical
/// behaviour.
struct ClampedScan {
    level: f64,
    offset: f64,
    cap: f64,
    target: f64,
}

impl ClampedScan {
    /// Scans `[lo, hi)`, returning the first crossing instant or updating
    /// `self.level` to the clamped level at `hi`. When `probe` is given,
    /// records the unclamped excursion envelope along the way.
    fn run(
        &mut self,
        f: &PiecewiseConstant,
        lo: SimTime,
        hi: SimTime,
        probe: Option<&mut Probe>,
    ) -> Option<SimTime> {
        self.scan(f.segments_between(lo, hi), probe)
    }

    /// The per-segment arithmetic of [`Self::run`] over any segment
    /// stream; the grid view feeds it [`GridSegments`], which yields the
    /// same segments as [`Segments`] over a uniform-grid window.
    fn scan(
        &mut self,
        segs: impl Iterator<Item = Segment>,
        mut probe: Option<&mut Probe>,
    ) -> Option<SimTime> {
        for seg in segs {
            let rate = seg.value + self.offset;
            let span = seg.duration().as_units();
            let unclamped_end = self.level + rate * span;
            let crossed = if rate > 0.0 {
                self.target > self.level && self.target <= unclamped_end.min(self.cap) + 1e-15
            } else if rate < 0.0 {
                self.target < self.level && self.target >= unclamped_end.max(0.0) - 1e-15
            } else {
                false
            };
            if crossed {
                let dt = (self.target - self.level) / rate;
                let t = SimTime::from_units_ceil(seg.start.as_units() + dt);
                return Some(t.min(seg.end).max(seg.start));
            }
            if let Some(p) = probe.as_deref_mut() {
                p.lo = p.lo.min(self.level.min(unclamped_end));
                p.hi = p.hi.max(self.level.max(unclamped_end));
                p.clamped |= unclamped_end < 0.0 || unclamped_end > self.cap;
            }
            self.level = unclamped_end.clamp(0.0, self.cap);
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outside {
    Inside,
    Before,
    After,
}

/// Iterator over [`Segment`]s, produced by
/// [`PiecewiseConstant::segments_between`].
#[derive(Debug)]
pub struct Segments<'a> {
    f: &'a PiecewiseConstant,
    cursor: SimTime,
    end: SimTime,
    cur: Cursor,
}

impl Segments<'_> {
    /// The iterator's current [`Cursor`], for threading into a later
    /// [`PiecewiseConstant::segments_between_with`] call over a window
    /// that resumes where this one stopped.
    pub fn state(&self) -> Cursor {
        self.cur
    }
}

impl Iterator for Segments<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.cursor >= self.end {
            return None;
        }
        let start = self.cursor;
        let value = self.f.value_at_with(&mut self.cur, start);
        let next_change = self
            .f
            .next_breakpoint_after_with(&mut self.cur, start)
            .unwrap_or(SimTime::MAX);
        let end = next_change.min(self.end);
        debug_assert!(end > start, "segment iterator must make progress");
        self.cursor = end;
        Some(Segment { start, end, value })
    }
}

impl PiecewiseConstant {
    /// Earliest breakpoint strictly after `t` at which the value may
    /// change, taking the extension rule into account. `None` means the
    /// function is constant for all time after `t`.
    pub fn next_breakpoint_after(&self, t: SimTime) -> Option<SimTime> {
        self.next_breakpoint_after_with(&mut Cursor::default(), t)
    }

    /// [`next_breakpoint_after`](Self::next_breakpoint_after) with cursor
    /// acceleration.
    pub fn next_breakpoint_after_with(&self, cur: &mut Cursor, t: SimTime) -> Option<SimTime> {
        let start = self.domain_start();
        let end = self.domain_end();
        match self.extension {
            Extension::Cycle => {
                let period = (end - start).as_ticks();
                let rel = (t - start).as_ticks();
                let k = rel.div_euclid(period);
                let r = rel.rem_euclid(period);
                let base = t - SimDuration::from_ticks(r);
                let folded = start + SimDuration::from_ticks(r);
                // The folded instant lies in some segment [b_i, b_{i+1});
                // b_{i+1} is the first breakpoint strictly after it.
                let idx = self.locate_with(cur, folded, k);
                let next_rel = (self.breakpoints[idx + 1] - start).as_ticks();
                Some(base + SimDuration::from_ticks(next_rel))
            }
            _ => {
                if t < start {
                    return Some(start);
                }
                if t >= end {
                    return None;
                }
                let idx = self.locate_with(cur, t, 0);
                Some(self.breakpoints[idx + 1])
            }
        }
    }
}

/// `O(1)` direct-index access to a uniform-grid, [`Extension::Hold`]
/// profile, obtained from [`PiecewiseConstant::uniform_grid`].
///
/// On a uniform grid `breakpoints[k] = start + k·dt` holds exactly (the
/// breakpoints are built — and verified — by whole-tick stepping), so the
/// segment containing an in-domain instant is one integer division away
/// and no cursor state is needed. Each method mirrors its cursor-driven
/// counterpart expression for expression: the division replaces only the
/// `partition_point` search, whose result it equals, so every returned
/// value is bit-identical to the scalar path.
#[derive(Debug, Clone, Copy)]
pub struct UniformGridView<'a> {
    f: &'a PiecewiseConstant,
    start_ticks: i64,
    end_ticks: i64,
    dt_ticks: i64,
    /// `1.0 / dt_ticks`, for the strength-reduced [`Self::idx`].
    inv_dt: f64,
}

impl<'a> UniformGridView<'a> {
    /// The profile this view indexes into.
    #[inline]
    pub fn profile(&self) -> &'a PiecewiseConstant {
        self.f
    }

    /// Segment index of an in-domain instant (`start <= t < end`).
    ///
    /// The division is strength-reduced to a reciprocal multiply with an
    /// exactness check: in-domain offsets are far below 2^52, so the
    /// estimate is off by at most one step, and a wrong estimate (or a
    /// pathologically large offset) falls back to the exact division.
    /// Every caller sits on the batched hot path — crossing-bisection
    /// probes alone take ~20 of these per call.
    #[inline]
    fn idx(&self, t: SimTime) -> usize {
        let n = t.as_ticks() - self.start_ticks;
        let mut k = (n as f64 * self.inv_dt) as i64;
        let lo = k.wrapping_mul(self.dt_ticks);
        if !(lo <= n && n.wrapping_sub(lo) < self.dt_ticks) {
            k = n / self.dt_ticks;
        }
        debug_assert_eq!(k, n / self.dt_ticks);
        debug_assert!(
            (0..self.f.values.len() as i64).contains(&k),
            "instant {t} outside the grid domain"
        );
        k as usize
    }

    /// [`PiecewiseConstant::value_at`] without the search.
    #[inline]
    pub fn value_at(&self, t: SimTime) -> f64 {
        let tk = t.as_ticks();
        if tk < self.start_ticks {
            return self.f.values[0];
        }
        if tk >= self.end_ticks {
            return self.f.values[self.f.values.len() - 1];
        }
        self.f.values[self.idx(t)]
    }

    /// Cumulative integral `F(t)` — the Hold arm of the cursor path's
    /// `cum_with`, with the located index substituted.
    #[inline]
    fn cum(&self, t: SimTime) -> f64 {
        let f = self.f;
        let tk = t.as_ticks();
        if tk >= self.start_ticks && tk < self.end_ticks {
            let idx = self.idx(t);
            return f.prefix[idx] + f.values[idx] * (t - f.breakpoints[idx]).as_units();
        }
        if tk < self.start_ticks {
            f.values[0] * (t - f.domain_start()).as_units()
        } else {
            f.total() + f.values[f.values.len() - 1] * (t - f.domain_end()).as_units()
        }
    }

    /// [`PiecewiseConstant::integrate`] without the searches: the same
    /// antiderivative difference `F(t2) − F(t1)`.
    #[inline]
    pub fn integrate(&self, t1: SimTime, t2: SimTime) -> f64 {
        let a = self.cum(t1);
        let b = self.cum(t2);
        b - a
    }

    /// [`PiecewiseConstant::next_breakpoint_after`] without the search.
    #[inline]
    pub fn next_breakpoint_after(&self, t: SimTime) -> Option<SimTime> {
        if t.as_ticks() < self.start_ticks {
            return Some(self.f.domain_start());
        }
        if t.as_ticks() >= self.end_ticks {
            return None;
        }
        Some(self.f.breakpoints[self.idx(t) + 1])
    }

    /// [`PiecewiseConstant::segments_between`] without per-step searches;
    /// yields the identical segment sequence.
    pub fn segments_between(&self, t1: SimTime, t2: SimTime) -> GridSegments<'a> {
        GridSegments {
            g: *self,
            cursor: t1,
            end: t2,
            i: -1,
        }
    }

    /// Visits the same clipped segments as [`Self::segments_between`],
    /// but by direct index stepping: the segment index is resolved once
    /// and incremented, instead of re-derived (twice — value and
    /// breakpoint) per step. Emitted `[start, end, value)` triples are
    /// identical to the iterator's, so any arithmetic the caller folds
    /// over them is bit-identical.
    #[inline]
    pub fn for_each_segment(&self, t1: SimTime, t2: SimTime, mut emit: impl FnMut(Segment)) {
        if t1 >= t2 {
            return;
        }
        let f = self.f;
        let mut cursor = t1;
        if cursor.as_ticks() < self.start_ticks {
            let end = f.domain_start().min(t2);
            emit(Segment {
                start: cursor,
                end,
                value: f.values[0],
            });
            cursor = end;
        }
        if cursor < t2 && cursor.as_ticks() < self.end_ticks {
            let mut i = self.idx(cursor);
            loop {
                let end = f.breakpoints[i + 1].min(t2);
                emit(Segment {
                    start: cursor,
                    end,
                    value: f.values[i],
                });
                cursor = end;
                i += 1;
                if cursor >= t2 || i == f.values.len() {
                    break;
                }
            }
        }
        if cursor < t2 {
            emit(Segment {
                start: cursor,
                end: t2,
                value: f.values[f.values.len() - 1],
            });
        }
    }

    /// [`PiecewiseConstant::first_accumulation_crossing`] specialized to
    /// the Hold extension: the same `O(1)` reject, the same monotone tick
    /// bisection (each probe now `O(1)` instead of `O(log n)`), and the
    /// same clamped segment scan on genuinely non-monotone windows.
    ///
    /// # Panics
    ///
    /// Same contract as the cursor path.
    pub fn first_accumulation_crossing(
        &self,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        cap: f64,
        target: f64,
    ) -> Option<SimTime> {
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!(
            (0.0..=cap).contains(&initial),
            "initial level outside [0, cap]"
        );
        assert!(
            (0.0..=cap).contains(&target),
            "target level outside [0, cap]"
        );
        if initial == target {
            return Some(from);
        }
        if from >= horizon {
            return None;
        }
        let (rate_min, rate_max) = (self.f.vmin + offset, self.f.vmax + offset);
        if (target > initial && rate_max <= 0.0) || (target < initial && rate_min >= 0.0) {
            return None;
        }
        let monotone =
            (target > initial && rate_min >= 0.0) || (target < initial && rate_max <= 0.0);
        if monotone {
            return self.monotone_crossing(from, horizon, initial, offset, target);
        }
        let mut scan = ClampedScan {
            level: initial,
            offset,
            cap,
            target,
        };
        scan.scan(self.segments_between(from, horizon), None)
    }

    /// The monotone tick bisection of the cursor path, probing through
    /// the `O(1)` [`Self::cum`] (the scalar path's probes already use
    /// fresh cursors, so the substitution is exact).
    fn monotone_crossing(
        &self,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        target: f64,
    ) -> Option<SimTime> {
        let needed = target - initial;
        let cum_from = self.cum(from);
        let g_at = |t: SimTime| self.cum(t) - cum_from + offset * (t - from).as_units();
        let reached = |g: f64| {
            if needed > 0.0 {
                g >= needed - 1e-15
            } else {
                g <= needed + 1e-15
            }
        };
        if reached(0.0) {
            return Some(from);
        }
        if !reached(g_at(horizon)) {
            return None;
        }
        let (mut lo, mut hi) = (from.as_ticks(), horizon.as_ticks());
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if reached(g_at(SimTime::from_ticks(mid))) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(SimTime::from_ticks(hi))
    }
}

/// Segment iterator of a [`UniformGridView`]; yields exactly what
/// [`Segments`] yields over the same window. In-domain steps carry the
/// segment index forward instead of re-deriving it (twice — value and
/// breakpoint) per step.
#[derive(Debug)]
pub struct GridSegments<'a> {
    g: UniformGridView<'a>,
    cursor: SimTime,
    end: SimTime,
    /// Index of the segment containing `cursor` when known, else -1.
    /// Only consulted while `cursor` is in-domain.
    i: i64,
}

impl Iterator for GridSegments<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.cursor >= self.end {
            return None;
        }
        let start = self.cursor;
        let f = self.g.f;
        let tk = start.as_ticks();
        let (value, next_change) = if tk < self.g.start_ticks {
            self.i = 0;
            (f.values[0], f.domain_start())
        } else if tk >= self.g.end_ticks {
            (f.values[f.values.len() - 1], SimTime::MAX)
        } else {
            let i = if self.i >= 0 {
                self.i as usize
            } else {
                self.g.idx(start)
            };
            debug_assert_eq!(i, self.g.idx(start), "stale carried segment index");
            self.i = i as i64 + 1;
            (f.values[i], f.breakpoints[i + 1])
        };
        let end = next_change.min(self.end);
        debug_assert!(end > start, "segment iterator must make progress");
        self.cursor = end;
        Some(Segment { start, end, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fn() -> PiecewiseConstant {
        PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(10),
                SimTime::from_whole_units(20),
                SimTime::from_whole_units(30),
            ],
            vec![2.0, 0.5, 4.0],
            Extension::Hold,
        )
        .unwrap()
    }

    #[test]
    fn cursor_stats_track_lookup_modes() {
        let f = sample_fn();
        let mut cur = f.cursor();
        let u = SimTime::from_whole_units;
        f.value_at_with(&mut cur, u(1)); // no usable hint yet
        f.value_at_with(&mut cur, u(2)); // same segment: hint hit
        f.value_at_with(&mut cur, u(25)); // two segments forward: gallop
        f.value_at_with(&mut cur, u(1)); // backward jump
        let s = cur.stats();
        assert_eq!(s.locates, 4);
        assert_eq!(s.fresh_searches, 1);
        assert_eq!(s.hint_hits, 1);
        assert_eq!(s.gallops, 1);
        assert_eq!(s.gallop_segments, 2);
        assert_eq!(s.backward_jumps, 1);
    }

    #[test]
    fn cursor_stats_track_crossing_tiers() {
        let u = SimTime::from_whole_units;
        // Strictly positive rates: upward crossings bisect, downward
        // targets are rejected in O(1).
        let f = sample_fn();
        let mut cur = f.cursor();
        assert!(f
            .first_accumulation_crossing_with(&mut cur, u(0), u(30), 0.0, 0.0, 100.0, 50.0)
            .is_some());
        assert!(f
            .first_accumulation_crossing_with(&mut cur, u(0), u(30), 50.0, 0.0, 100.0, 10.0)
            .is_none());
        let s = cur.stats();
        assert_eq!(s.cross_bisect, 1);
        assert_eq!(s.cross_reject, 1);
        assert_eq!(s.cross_scan, 0);

        // Mixed-sign rates force the clamped segment scan.
        let g = PiecewiseConstant::new(
            vec![SimTime::ZERO, u(10), u(20)],
            vec![1.0, -1.0],
            Extension::Hold,
        )
        .unwrap();
        let mut gcur = g.cursor();
        g.first_accumulation_crossing_with(&mut gcur, u(0), u(20), 0.0, 0.0, 100.0, 5.0);
        assert_eq!(gcur.stats().cross_scan, 1);

        // The same query under Cycle takes the period-skip scanner.
        let c = PiecewiseConstant::new(
            vec![SimTime::ZERO, u(10), u(20)],
            vec![1.0, -1.0],
            Extension::Cycle,
        )
        .unwrap();
        let mut ccur = c.cursor();
        c.first_accumulation_crossing_with(&mut ccur, u(0), u(20), 0.0, 0.0, 100.0, 5.0);
        assert_eq!(ccur.stats().cross_cyclic, 1);
    }

    #[test]
    fn cursor_stats_survive_segment_iteration() {
        let f = sample_fn();
        let mut total = 0u32;
        let mut segs = f.segments_between_with(
            f.cursor(),
            SimTime::from_whole_units(0),
            SimTime::from_whole_units(30),
        );
        for _ in segs.by_ref() {}
        total = total.wrapping_add(segs.state().stats().locates);
        assert!(total > 0, "segment iteration drives the cursor");
    }

    #[test]
    fn construction_validates_lengths() {
        let err = PiecewiseConstant::new(vec![SimTime::ZERO], vec![], Extension::Hold);
        assert!(matches!(err, Err(PiecewiseError::LengthMismatch { .. })));
    }

    #[test]
    fn construction_validates_monotonicity() {
        let err = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::ZERO],
            vec![1.0],
            Extension::Hold,
        );
        assert!(matches!(
            err,
            Err(PiecewiseError::NotIncreasing { index: 1 })
        ));
    }

    #[test]
    fn construction_validates_values() {
        let err = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(1)],
            vec![f64::NAN],
            Extension::Hold,
        );
        assert!(matches!(
            err,
            Err(PiecewiseError::NonFiniteValue { index: 0 })
        ));
    }

    #[test]
    fn value_lookup_half_open_intervals() {
        let f = sample_fn();
        assert_eq!(f.value_at(SimTime::ZERO), 2.0);
        assert_eq!(f.value_at(SimTime::from_units(9.999_999)), 2.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(10)), 0.5);
        assert_eq!(f.value_at(SimTime::from_whole_units(29)), 4.0);
    }

    #[test]
    fn hold_extension_clamps_both_sides() {
        let f = sample_fn();
        assert_eq!(f.value_at(SimTime::from_whole_units(-5)), 2.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(99)), 4.0);
    }

    #[test]
    fn zero_extension_vanishes_outside() {
        let f = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(10)],
            vec![3.0],
            Extension::Zero,
        )
        .unwrap();
        assert_eq!(f.value_at(SimTime::from_whole_units(-1)), 0.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(10)), 0.0);
        assert_eq!(
            f.integrate(SimTime::from_whole_units(-5), SimTime::from_whole_units(15)),
            30.0
        );
    }

    #[test]
    fn cycle_extension_repeats() {
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(1),
                SimTime::from_whole_units(2),
            ],
            vec![1.0, 5.0],
            Extension::Cycle,
        )
        .unwrap();
        assert_eq!(f.value_at(SimTime::from_whole_units(4)), 1.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(5)), 5.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(-1)), 5.0);
        // One full period integrates to 6 regardless of phase.
        let e = f.integrate(SimTime::from_units(3.5), SimTime::from_units(5.5));
        assert!((e - 6.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn integral_matches_hand_computation() {
        let f = sample_fn();
        let e = f.integrate(SimTime::from_whole_units(5), SimTime::from_whole_units(25));
        // 5·2.0 + 10·0.5 + 5·4.0 = 35
        assert!((e - 35.0).abs() < 1e-9);
    }

    #[test]
    fn reversed_integral_negates() {
        let f = sample_fn();
        let fwd = f.integrate(SimTime::ZERO, SimTime::from_whole_units(30));
        let back = f.integrate(SimTime::from_whole_units(30), SimTime::ZERO);
        assert_eq!(fwd, -back);
    }

    #[test]
    fn segments_cover_window_exactly() {
        let f = sample_fn();
        let segs: Vec<_> = f
            .segments_between(SimTime::from_whole_units(5), SimTime::from_whole_units(25))
            .collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].start, SimTime::from_whole_units(5));
        assert_eq!(segs[2].end, SimTime::from_whole_units(25));
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn segments_beyond_domain_use_extension() {
        let f = sample_fn();
        let segs: Vec<_> = f
            .segments_between(SimTime::from_whole_units(25), SimTime::from_whole_units(45))
            .collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].value, 4.0);
        assert_eq!(segs[1].end, SimTime::from_whole_units(45));
    }

    #[test]
    fn from_samples_builds_uniform_grid() {
        let f = PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(2),
            vec![1.0, 2.0, 3.0],
            Extension::Hold,
        )
        .unwrap();
        assert_eq!(f.domain_end(), SimTime::from_whole_units(6));
        assert_eq!(f.value_at(SimTime::from_whole_units(3)), 2.0);
        assert!((f.domain_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_fill_time() {
        // Charge at net +2 from level 1 toward target 5: takes 2 units.
        let f = PiecewiseConstant::constant(3.0);
        let t = f
            .first_accumulation_crossing(
                SimTime::ZERO,
                SimTime::from_whole_units(100),
                1.0,
                -1.0, // drain 1 → net +2
                10.0,
                5.0,
            )
            .unwrap();
        assert_eq!(t, SimTime::from_whole_units(2));
    }

    #[test]
    fn crossing_depletion_time_across_segments() {
        // 0 harvest for 3 units, then 1.0; drain 2.0; start level 4.
        // Level: 4 - 2t on [0,3) → 1 at t=3? No: 4-6 = -2 clamps at t=2.
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(3),
                SimTime::from_whole_units(10),
            ],
            vec![0.0, 1.0],
            Extension::Hold,
        )
        .unwrap();
        let t = f
            .first_accumulation_crossing(
                SimTime::ZERO,
                SimTime::from_whole_units(10),
                4.0,
                -2.0,
                100.0,
                0.0,
            )
            .unwrap();
        assert_eq!(t, SimTime::from_whole_units(2));
    }

    #[test]
    fn crossing_unreachable_returns_none() {
        let f = PiecewiseConstant::constant(1.0);
        // Net rate zero: never reaches the target.
        let t = f.first_accumulation_crossing(
            SimTime::ZERO,
            SimTime::from_whole_units(50),
            1.0,
            -1.0,
            10.0,
            5.0,
        );
        assert_eq!(t, None);
    }

    #[test]
    fn crossing_respects_clamping() {
        // Strong drain empties the store in segment 1; recovery in
        // segment 2 must start from 0, not from the unclamped negative.
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(5),
                SimTime::from_whole_units(100),
            ],
            vec![0.0, 2.0],
            Extension::Hold,
        )
        .unwrap();
        let t = f
            .first_accumulation_crossing(
                SimTime::ZERO,
                SimTime::from_whole_units(100),
                3.0,
                -1.0,
                10.0,
                4.0,
            )
            .unwrap();
        // Level hits 0 at t=3, stays 0 until 5, then rises at +1/unit:
        // reaches 4 at t=9.
        assert_eq!(t, SimTime::from_whole_units(9));
    }

    #[test]
    fn next_breakpoint_cycle_wraps() {
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(2),
                SimTime::from_whole_units(3),
            ],
            vec![1.0, 2.0],
            Extension::Cycle,
        )
        .unwrap();
        assert_eq!(
            f.next_breakpoint_after(SimTime::from_whole_units(4)),
            Some(SimTime::from_whole_units(5))
        );
        assert_eq!(
            f.next_breakpoint_after(SimTime::from_whole_units(5)),
            Some(SimTime::from_whole_units(6))
        );
    }

    #[test]
    fn domain_stats() {
        let f = sample_fn();
        assert_eq!(f.domain_max(), 4.0);
        assert_eq!(f.domain_min(), 0.5);
        let mean = f.domain_mean();
        assert!((mean - (20.0 + 5.0 + 40.0) / 30.0).abs() < 1e-12);
    }

    // ------------------------------------------------------------------
    // Prefix-table / cursor fast-path coverage.
    // ------------------------------------------------------------------

    #[test]
    fn prefix_integrate_matches_naive() {
        for ext in [Extension::Hold, Extension::Zero, Extension::Cycle] {
            let f = PiecewiseConstant::new(
                vec![
                    SimTime::from_whole_units(-3),
                    SimTime::from_units(1.5),
                    SimTime::from_whole_units(4),
                    SimTime::from_units(7.25),
                ],
                vec![2.5, -1.0, 0.75],
                ext,
            )
            .unwrap();
            for (a, b) in [
                (-10.0, 20.0),
                (-5.5, -4.0),
                (2.0, 2.0),
                (13.0, 3.0),
                (6.9, 7.3),
            ] {
                let (t1, t2) = (SimTime::from_units(a), SimTime::from_units(b));
                let fast = f.integrate(t1, t2);
                let slow = f.integrate_naive(t1, t2);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "{ext:?} [{a},{b}): fast={fast} naive={slow}"
                );
            }
        }
    }

    #[test]
    fn cursor_monotone_sweep_matches_cold_queries() {
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(2),
                SimTime::from_whole_units(3),
                SimTime::from_whole_units(7),
            ],
            vec![1.0, -2.0, 0.5],
            Extension::Cycle,
        )
        .unwrap();
        let mut cur = f.cursor();
        let mut t = SimTime::from_units(-4.25);
        while t < SimTime::from_whole_units(30) {
            assert_eq!(f.value_at_with(&mut cur, t), f.value_at(t), "value at {t}");
            assert_eq!(
                f.next_breakpoint_after_with(&mut cur, t),
                f.next_breakpoint_after(t),
                "next breakpoint after {t}"
            );
            let t2 = t + SimDuration::from_units(0.6);
            let want = f.integrate(t, t2);
            let got = f.integrate_with(&mut cur, t, t2);
            assert!(
                (got - want).abs() < 1e-9,
                "integral at {t}: {got} vs {want}"
            );
            t += SimDuration::from_units(0.35);
        }
    }

    #[test]
    fn cursor_tolerates_backward_jumps() {
        let f = sample_fn();
        let mut cur = f.cursor();
        let late = SimTime::from_whole_units(25);
        let early = SimTime::from_whole_units(1);
        assert_eq!(f.value_at_with(&mut cur, late), 4.0);
        assert_eq!(f.value_at_with(&mut cur, early), 2.0);
        assert_eq!(f.value_at_with(&mut cur, late), 4.0);
    }

    #[test]
    fn crossing_fast_path_matches_naive_on_breakpoint_aligned_target() {
        // Monotone upward crossing landing exactly on a breakpoint: the
        // prefix-seek rewrite must return the same tick as the scan.
        let f = sample_fn();
        let args = (
            SimTime::ZERO,
            SimTime::from_whole_units(100),
            0.0,
            -0.5,
            1000.0,
            25.0,
        );
        let fast = f.first_accumulation_crossing(args.0, args.1, args.2, args.3, args.4, args.5);
        let naive =
            f.first_accumulation_crossing_naive(args.0, args.1, args.2, args.3, args.4, args.5);
        // Net rates 1.5, 0.0, 3.5: level is 15 at t=10, flat to t=20,
        // reaching 25 needs 10/3.5 more — but with target 15 it lands on
        // the t=10 breakpoint exactly.
        assert_eq!(fast, naive);
        let aligned = f.first_accumulation_crossing(args.0, args.1, args.2, args.3, args.4, 15.0);
        let aligned_naive =
            f.first_accumulation_crossing_naive(args.0, args.1, args.2, args.3, args.4, 15.0);
        assert_eq!(aligned, SimTime::from_whole_units(10).into());
        assert_eq!(aligned, aligned_naive);
    }

    #[test]
    fn cyclic_crossing_skips_periods() {
        // Net +0.25 per 2-unit period (dyadic, so both paths are exact):
        // the level first exceeds 50 inside the rising half of period 195,
        // at t = 391. The period-skip path must agree with the naive scan.
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(1),
                SimTime::from_whole_units(2),
            ],
            vec![1.25, -1.0],
            Extension::Cycle,
        )
        .unwrap();
        let horizon = SimTime::from_whole_units(5000);
        let fast = f.first_accumulation_crossing(SimTime::ZERO, horizon, 0.0, 0.0, 100.0, 50.0);
        let naive =
            f.first_accumulation_crossing_naive(SimTime::ZERO, horizon, 0.0, 0.0, 100.0, 50.0);
        assert_eq!(fast, naive);
        assert_eq!(fast, Some(SimTime::from_whole_units(391)));
    }

    #[test]
    fn cyclic_crossing_detects_periodic_steady_state() {
        // Zero net drift and a target outside the excursion: the fixed
        // point of the period map proves unreachability after one period.
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(1),
                SimTime::from_whole_units(2),
            ],
            vec![1.0, -1.0],
            Extension::Cycle,
        )
        .unwrap();
        let horizon = SimTime::from_whole_units(1_000_000);
        let fast = f.first_accumulation_crossing(SimTime::ZERO, horizon, 2.0, 0.0, 10.0, 8.0);
        assert_eq!(fast, None);
    }

    /// Deterministic xorshift so grid-parity probes need no external RNG.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn grid_profile(seed: u64, n: usize) -> PiecewiseConstant {
        let mut s = seed.max(1);
        let samples: Vec<f64> = (0..n)
            .map(|_| (xorshift(&mut s) % 1000) as f64 / 137.0 - 1.5)
            .collect();
        PiecewiseConstant::from_samples(
            SimTime::from_whole_units(-3),
            SimDuration::from_units(0.75),
            samples,
            Extension::Hold,
        )
        .unwrap()
    }

    #[test]
    fn uniform_grid_detection() {
        assert!(grid_profile(7, 40).uniform_grid().is_some());
        // Non-uniform spacing: no view.
        let f = sample_fn(); // gaps 10, 10, 10 — uniform, so this HAS one
        assert!(f.uniform_grid().is_some());
        let g = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(1),
                SimTime::from_whole_units(3),
            ],
            vec![1.0, 2.0],
            Extension::Hold,
        )
        .unwrap();
        assert!(g.uniform_grid().is_none());
        // Uniform but cyclic: the view only models Hold tails.
        let c = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(1),
                SimTime::from_whole_units(2),
            ],
            vec![1.0, 2.0],
            Extension::Cycle,
        )
        .unwrap();
        assert!(c.uniform_grid().is_none());
    }

    #[test]
    fn grid_view_lookups_bit_identical() {
        for seed in 1..6u64 {
            let f = grid_profile(seed, 64);
            let g = f.uniform_grid().unwrap();
            let mut s = seed.wrapping_mul(0x9E37_79B9).max(1);
            for _ in 0..400 {
                let t = SimTime::from_ticks((xorshift(&mut s) % 80_000_000) as i64 - 10_000_000);
                assert_eq!(
                    g.value_at(t).to_bits(),
                    f.value_at(t).to_bits(),
                    "value at {t}"
                );
                assert_eq!(
                    g.next_breakpoint_after(t),
                    f.next_breakpoint_after(t),
                    "breakpoint after {t}"
                );
                let t2 = t + SimDuration::from_ticks((xorshift(&mut s) % 20_000_000) as i64);
                assert_eq!(
                    g.integrate(t, t2).to_bits(),
                    f.integrate_with(&mut f.cursor(), t, t2).to_bits(),
                    "integral over [{t}, {t2})"
                );
                let segs_grid: Vec<_> = g.segments_between(t, t2).collect();
                let segs_scalar: Vec<_> = f.segments_between(t, t2).collect();
                assert_eq!(segs_grid, segs_scalar, "segments over [{t}, {t2})");
            }
        }
    }

    #[test]
    fn grid_view_crossings_bit_identical() {
        for seed in 1..6u64 {
            let f = grid_profile(seed, 48);
            let g = f.uniform_grid().unwrap();
            let mut s = seed.wrapping_mul(0xA076_1D64).max(1);
            let cap = 25.0;
            for _ in 0..200 {
                let from = SimTime::from_ticks((xorshift(&mut s) % 40_000_000) as i64 - 5_000_000);
                let horizon =
                    from + SimDuration::from_ticks((xorshift(&mut s) % 60_000_000) as i64);
                let initial = (xorshift(&mut s) % 1000) as f64 / 999.0 * cap;
                let target = (xorshift(&mut s) % 1000) as f64 / 999.0 * cap;
                let offset = (xorshift(&mut s) % 1000) as f64 / 137.0 - 3.5;
                let want =
                    f.first_accumulation_crossing(from, horizon, initial, offset, cap, target);
                let got =
                    g.first_accumulation_crossing(from, horizon, initial, offset, cap, target);
                assert_eq!(
                    got, want,
                    "crossing from {from} to {horizon}, {initial}->{target} offset {offset}"
                );
            }
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_prefix_table() {
        let f = PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(4),
                SimTime::from_whole_units(9),
            ],
            vec![1.25, -0.5],
            Extension::Cycle,
        )
        .unwrap();
        let back = PiecewiseConstant::from_value(&f.to_value()).unwrap();
        assert_eq!(back, f);
        let (a, b) = (SimTime::from_units(-3.5), SimTime::from_units(21.0));
        assert_eq!(back.integrate(a, b), f.integrate(a, b));
    }

    #[test]
    fn serde_rejects_invalid_profiles() {
        let f = sample_fn();
        let mut v = f.to_value();
        if let serde::Value::Map(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "values" {
                    *val = serde::Value::Seq(vec![]);
                }
            }
        }
        assert!(PiecewiseConstant::from_value(&v).is_err());
    }
}
