//! Piecewise-constant functions of simulated time.
//!
//! Harvest-power profiles are represented as piecewise-constant functions
//! so that every energy integral `∫ P(t) dt` and every linear crossing
//! time can be evaluated in closed form — the whole simulation stack stays
//! exact and deterministic.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// How a [`PiecewiseConstant`] behaves outside the interval covered by its
/// breakpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Extension {
    /// Hold the first value before the domain and the last value after it.
    #[default]
    Hold,
    /// The function is zero outside its domain.
    Zero,
    /// The profile repeats with its domain length as period.
    ///
    /// The domain must have positive length for this to be meaningful;
    /// construction enforces it.
    Cycle,
}

/// Error constructing a [`PiecewiseConstant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiecewiseError {
    /// The breakpoint list was empty or had fewer entries than values
    /// require (`n + 1` breakpoints for `n` values).
    LengthMismatch {
        /// Number of breakpoints supplied.
        breakpoints: usize,
        /// Number of segment values supplied.
        values: usize,
    },
    /// Breakpoints were not strictly increasing.
    NotIncreasing {
        /// Index of the first offending breakpoint.
        index: usize,
    },
    /// A segment value was NaN or infinite.
    NonFiniteValue {
        /// Index of the offending value.
        index: usize,
    },
    /// [`Extension::Cycle`] requires a domain of positive length.
    EmptyCycle,
}

impl fmt::Display for PiecewiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiecewiseError::LengthMismatch { breakpoints, values } => write!(
                f,
                "piecewise function needs exactly one more breakpoint than values \
                 (got {breakpoints} breakpoints for {values} values)"
            ),
            PiecewiseError::NotIncreasing { index } => {
                write!(f, "breakpoints must be strictly increasing (violated at index {index})")
            }
            PiecewiseError::NonFiniteValue { index } => {
                write!(f, "segment value at index {index} is not finite")
            }
            PiecewiseError::EmptyCycle => {
                write!(f, "cyclic extension requires a domain of positive length")
            }
        }
    }
}

impl std::error::Error for PiecewiseError {}

/// A piecewise-constant function `f: SimTime → f64`.
///
/// The function takes value `values[i]` on the half-open interval
/// `[breakpoints[i], breakpoints[i+1])`; behaviour outside
/// `[breakpoints[0], breakpoints[n])` is governed by the [`Extension`].
///
/// # Examples
///
/// ```
/// use harvest_sim::piecewise::{Extension, PiecewiseConstant};
/// use harvest_sim::time::SimTime;
///
/// // 2.0 on [0,10), 0.5 on [10,20), held constant outside.
/// let f = PiecewiseConstant::new(
///     vec![SimTime::ZERO, SimTime::from_whole_units(10), SimTime::from_whole_units(20)],
///     vec![2.0, 0.5],
///     Extension::Hold,
/// )?;
/// assert_eq!(f.value_at(SimTime::from_whole_units(3)), 2.0);
/// assert_eq!(f.value_at(SimTime::from_whole_units(10)), 0.5);
/// // ∫ over [5,15) = 5·2.0 + 5·0.5
/// let e = f.integrate(SimTime::from_whole_units(5), SimTime::from_whole_units(15));
/// assert!((e - 12.5).abs() < 1e-12);
/// # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseConstant {
    breakpoints: Vec<SimTime>,
    values: Vec<f64>,
    extension: Extension,
}

/// One maximal constant stretch of a [`PiecewiseConstant`] restricted to a
/// query window, as yielded by [`PiecewiseConstant::segments_between`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// Function value over `[start, end)`.
    pub value: f64,
}

impl Segment {
    /// Length of the segment.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Integral of the function over this segment.
    #[inline]
    pub fn integral(&self) -> f64 {
        self.value * self.duration().as_units()
    }
}

impl PiecewiseConstant {
    /// Creates a piecewise-constant function.
    ///
    /// `breakpoints` must be strictly increasing and contain exactly one
    /// more element than `values`.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] on length mismatch, non-monotone
    /// breakpoints, non-finite values, or an empty domain with
    /// [`Extension::Cycle`].
    pub fn new(
        breakpoints: Vec<SimTime>,
        values: Vec<f64>,
        extension: Extension,
    ) -> Result<Self, PiecewiseError> {
        if breakpoints.len() != values.len() + 1 || values.is_empty() {
            return Err(PiecewiseError::LengthMismatch {
                breakpoints: breakpoints.len(),
                values: values.len(),
            });
        }
        for (i, w) in breakpoints.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(PiecewiseError::NotIncreasing { index: i + 1 });
            }
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(PiecewiseError::NonFiniteValue { index });
        }
        if extension == Extension::Cycle && breakpoints.first() == breakpoints.last() {
            return Err(PiecewiseError::EmptyCycle);
        }
        Ok(PiecewiseConstant { breakpoints, values, extension })
    }

    /// A function that is `value` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn constant(value: f64) -> Self {
        assert!(value.is_finite(), "constant value must be finite");
        PiecewiseConstant {
            breakpoints: vec![SimTime::ZERO, SimTime::from_whole_units(1)],
            values: vec![value],
            extension: Extension::Hold,
        }
    }

    /// Builds a profile from equally spaced samples starting at `start`,
    /// each sample holding for `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] if `samples` is empty, `dt` is not
    /// positive, or a sample is not finite.
    pub fn from_samples(
        start: SimTime,
        dt: SimDuration,
        samples: Vec<f64>,
        extension: Extension,
    ) -> Result<Self, PiecewiseError> {
        if samples.is_empty() || !dt.is_positive() {
            return Err(PiecewiseError::LengthMismatch { breakpoints: 0, values: samples.len() });
        }
        let mut breakpoints = Vec::with_capacity(samples.len() + 1);
        let mut t = start;
        for _ in 0..=samples.len() {
            breakpoints.push(t);
            t += dt;
        }
        PiecewiseConstant::new(breakpoints, samples, extension)
    }

    /// Start of the explicitly defined domain.
    #[inline]
    pub fn domain_start(&self) -> SimTime {
        self.breakpoints[0]
    }

    /// End of the explicitly defined domain (exclusive).
    #[inline]
    pub fn domain_end(&self) -> SimTime {
        *self.breakpoints.last().expect("non-empty by construction")
    }

    /// The extension rule in force outside the domain.
    #[inline]
    pub fn extension(&self) -> Extension {
        self.extension
    }

    /// Number of constant segments in the explicit domain.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.values.len()
    }

    /// The segment values in the explicit domain.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean value of the function over its explicit domain.
    pub fn domain_mean(&self) -> f64 {
        let len = (self.domain_end() - self.domain_start()).as_units();
        self.integrate(self.domain_start(), self.domain_end()) / len
    }

    /// Maximum value over the explicit domain.
    pub fn domain_max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum value over the explicit domain.
    pub fn domain_min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Value of the function at instant `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        let (t, outside) = self.fold_into_domain(t);
        match outside {
            Outside::Before => match self.extension {
                Extension::Hold => self.values[0],
                Extension::Zero => 0.0,
                Extension::Cycle => unreachable!("cycle folding maps into domain"),
            },
            Outside::After => match self.extension {
                Extension::Hold => *self.values.last().expect("non-empty"),
                Extension::Zero => 0.0,
                Extension::Cycle => unreachable!("cycle folding maps into domain"),
            },
            Outside::Inside => {
                // partition_point returns the count of breakpoints <= t;
                // segment index is that count minus one.
                let idx = self.breakpoints.partition_point(|&b| b <= t) - 1;
                self.values[idx.min(self.values.len() - 1)]
            }
        }
    }

    /// Exact integral of the function over `[t1, t2)`.
    ///
    /// Returns a negated integral when `t2 < t1`.
    pub fn integrate(&self, t1: SimTime, t2: SimTime) -> f64 {
        if t2 < t1 {
            return -self.integrate(t2, t1);
        }
        self.segments_between(t1, t2).map(|s| s.integral()).sum()
    }

    /// Iterates the maximal constant stretches of the function restricted
    /// to the window `[t1, t2)`, in order, covering it exactly.
    pub fn segments_between(&self, t1: SimTime, t2: SimTime) -> Segments<'_> {
        Segments { f: self, cursor: t1, end: t2 }
    }

    /// Earliest `t ≥ from` at which the *accumulated* value
    /// `acc(t) = initial + ∫_from^t (f(u) + offset) du`, clamped to
    /// `[0, cap]` along the way, first reaches `target`.
    ///
    /// This is the primitive behind "when does the storage fill/empty"
    /// queries: `offset` is the (negated) constant drain, `cap` the
    /// storage capacity. Returns `None` if the level never reaches
    /// `target` before `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative, or `initial`/`target` fall outside
    /// `[0, cap]`.
    pub fn first_accumulation_crossing(
        &self,
        from: SimTime,
        horizon: SimTime,
        initial: f64,
        offset: f64,
        cap: f64,
        target: f64,
    ) -> Option<SimTime> {
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!((0.0..=cap).contains(&initial), "initial level outside [0, cap]");
        assert!((0.0..=cap).contains(&target), "target level outside [0, cap]");
        let mut level = initial;
        if level == target {
            return Some(from);
        }
        for seg in self.segments_between(from, horizon) {
            let rate = seg.value + offset;
            let span = seg.duration().as_units();
            let unclamped_end = level + rate * span;
            let crossed = if rate > 0.0 {
                target > level && target <= unclamped_end.min(cap) + 1e-15
            } else if rate < 0.0 {
                target < level && target >= unclamped_end.max(0.0) - 1e-15
            } else {
                false
            };
            if crossed {
                let dt = (target - level) / rate;
                let t = SimTime::from_units_ceil(seg.start.as_units() + dt);
                return Some(t.min(seg.end).max(seg.start));
            }
            level = unclamped_end.clamp(0.0, cap);
        }
        None
    }

    #[inline]
    fn fold_into_domain(&self, t: SimTime) -> (SimTime, Outside) {
        let start = self.domain_start();
        let end = self.domain_end();
        if t >= start && t < end {
            return (t, Outside::Inside);
        }
        match self.extension {
            Extension::Cycle => {
                let period = (end - start).as_ticks();
                let rel = (t - start).as_ticks().rem_euclid(period);
                (start + SimDuration::from_ticks(rel), Outside::Inside)
            }
            _ if t < start => (t, Outside::Before),
            _ => (t, Outside::After),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outside {
    Inside,
    Before,
    After,
}

/// Iterator over [`Segment`]s, produced by
/// [`PiecewiseConstant::segments_between`].
#[derive(Debug)]
pub struct Segments<'a> {
    f: &'a PiecewiseConstant,
    cursor: SimTime,
    end: SimTime,
}

impl Iterator for Segments<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.cursor >= self.end {
            return None;
        }
        let start = self.cursor;
        let value = self.f.value_at(start);
        let next_change = self.f.next_breakpoint_after(start).unwrap_or(SimTime::MAX);
        let end = next_change.min(self.end);
        debug_assert!(end > start, "segment iterator must make progress");
        self.cursor = end;
        Some(Segment { start, end, value })
    }
}

impl PiecewiseConstant {
    /// Earliest breakpoint strictly after `t` at which the value may
    /// change, taking the extension rule into account. `None` means the
    /// function is constant for all time after `t`.
    pub fn next_breakpoint_after(&self, t: SimTime) -> Option<SimTime> {
        let start = self.domain_start();
        let end = self.domain_end();
        match self.extension {
            Extension::Cycle => {
                let period = (end - start).as_ticks();
                let rel = (t - start).as_ticks().rem_euclid(period);
                let base = t - SimDuration::from_ticks(rel);
                // Find the first breakpoint within the current cycle image
                // strictly after `rel`, else wrap to the next cycle start.
                let folded = start + SimDuration::from_ticks(rel);
                let idx = self.breakpoints.partition_point(|&b| b <= folded);
                let next_rel = if idx < self.breakpoints.len() {
                    (self.breakpoints[idx] - start).as_ticks()
                } else {
                    period
                };
                Some(base + SimDuration::from_ticks(next_rel))
            }
            _ => {
                if t < start {
                    return Some(start);
                }
                let idx = self.breakpoints.partition_point(|&b| b <= t);
                if idx < self.breakpoints.len() {
                    Some(self.breakpoints[idx])
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fn() -> PiecewiseConstant {
        PiecewiseConstant::new(
            vec![
                SimTime::ZERO,
                SimTime::from_whole_units(10),
                SimTime::from_whole_units(20),
                SimTime::from_whole_units(30),
            ],
            vec![2.0, 0.5, 4.0],
            Extension::Hold,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = PiecewiseConstant::new(vec![SimTime::ZERO], vec![], Extension::Hold);
        assert!(matches!(err, Err(PiecewiseError::LengthMismatch { .. })));
    }

    #[test]
    fn construction_validates_monotonicity() {
        let err = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::ZERO],
            vec![1.0],
            Extension::Hold,
        );
        assert!(matches!(err, Err(PiecewiseError::NotIncreasing { index: 1 })));
    }

    #[test]
    fn construction_validates_values() {
        let err = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(1)],
            vec![f64::NAN],
            Extension::Hold,
        );
        assert!(matches!(err, Err(PiecewiseError::NonFiniteValue { index: 0 })));
    }

    #[test]
    fn value_lookup_half_open_intervals() {
        let f = sample_fn();
        assert_eq!(f.value_at(SimTime::ZERO), 2.0);
        assert_eq!(f.value_at(SimTime::from_units(9.999_999)), 2.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(10)), 0.5);
        assert_eq!(f.value_at(SimTime::from_whole_units(29)), 4.0);
    }

    #[test]
    fn hold_extension_clamps_both_sides() {
        let f = sample_fn();
        assert_eq!(f.value_at(SimTime::from_whole_units(-5)), 2.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(99)), 4.0);
    }

    #[test]
    fn zero_extension_vanishes_outside() {
        let f = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(10)],
            vec![3.0],
            Extension::Zero,
        )
        .unwrap();
        assert_eq!(f.value_at(SimTime::from_whole_units(-1)), 0.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(10)), 0.0);
        assert_eq!(f.integrate(SimTime::from_whole_units(-5), SimTime::from_whole_units(15)), 30.0);
    }

    #[test]
    fn cycle_extension_repeats() {
        let f = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(1), SimTime::from_whole_units(2)],
            vec![1.0, 5.0],
            Extension::Cycle,
        )
        .unwrap();
        assert_eq!(f.value_at(SimTime::from_whole_units(4)), 1.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(5)), 5.0);
        assert_eq!(f.value_at(SimTime::from_whole_units(-1)), 5.0);
        // One full period integrates to 6 regardless of phase.
        let e = f.integrate(SimTime::from_units(3.5), SimTime::from_units(5.5));
        assert!((e - 6.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn integral_matches_hand_computation() {
        let f = sample_fn();
        let e = f.integrate(SimTime::from_whole_units(5), SimTime::from_whole_units(25));
        // 5·2.0 + 10·0.5 + 5·4.0 = 35
        assert!((e - 35.0).abs() < 1e-9);
    }

    #[test]
    fn reversed_integral_negates() {
        let f = sample_fn();
        let fwd = f.integrate(SimTime::ZERO, SimTime::from_whole_units(30));
        let back = f.integrate(SimTime::from_whole_units(30), SimTime::ZERO);
        assert_eq!(fwd, -back);
    }

    #[test]
    fn segments_cover_window_exactly() {
        let f = sample_fn();
        let segs: Vec<_> = f
            .segments_between(SimTime::from_whole_units(5), SimTime::from_whole_units(25))
            .collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].start, SimTime::from_whole_units(5));
        assert_eq!(segs[2].end, SimTime::from_whole_units(25));
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn segments_beyond_domain_use_extension() {
        let f = sample_fn();
        let segs: Vec<_> = f
            .segments_between(SimTime::from_whole_units(25), SimTime::from_whole_units(45))
            .collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].value, 4.0);
        assert_eq!(segs[1].end, SimTime::from_whole_units(45));
    }

    #[test]
    fn from_samples_builds_uniform_grid() {
        let f = PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(2),
            vec![1.0, 2.0, 3.0],
            Extension::Hold,
        )
        .unwrap();
        assert_eq!(f.domain_end(), SimTime::from_whole_units(6));
        assert_eq!(f.value_at(SimTime::from_whole_units(3)), 2.0);
        assert!((f.domain_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_fill_time() {
        // Charge at net +2 from level 1 toward target 5: takes 2 units.
        let f = PiecewiseConstant::constant(3.0);
        let t = f
            .first_accumulation_crossing(
                SimTime::ZERO,
                SimTime::from_whole_units(100),
                1.0,
                -1.0, // drain 1 → net +2
                10.0,
                5.0,
            )
            .unwrap();
        assert_eq!(t, SimTime::from_whole_units(2));
    }

    #[test]
    fn crossing_depletion_time_across_segments() {
        // 0 harvest for 3 units, then 1.0; drain 2.0; start level 4.
        // Level: 4 - 2t on [0,3) → 1 at t=3? No: 4-6 = -2 clamps at t=2.
        let f = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(3), SimTime::from_whole_units(10)],
            vec![0.0, 1.0],
            Extension::Hold,
        )
        .unwrap();
        let t = f
            .first_accumulation_crossing(
                SimTime::ZERO,
                SimTime::from_whole_units(10),
                4.0,
                -2.0,
                100.0,
                0.0,
            )
            .unwrap();
        assert_eq!(t, SimTime::from_whole_units(2));
    }

    #[test]
    fn crossing_unreachable_returns_none() {
        let f = PiecewiseConstant::constant(1.0);
        // Net rate zero: never reaches the target.
        let t = f.first_accumulation_crossing(
            SimTime::ZERO,
            SimTime::from_whole_units(50),
            1.0,
            -1.0,
            10.0,
            5.0,
        );
        assert_eq!(t, None);
    }

    #[test]
    fn crossing_respects_clamping() {
        // Strong drain empties the store in segment 1; recovery in
        // segment 2 must start from 0, not from the unclamped negative.
        let f = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(5), SimTime::from_whole_units(100)],
            vec![0.0, 2.0],
            Extension::Hold,
        )
        .unwrap();
        let t = f
            .first_accumulation_crossing(
                SimTime::ZERO,
                SimTime::from_whole_units(100),
                3.0,
                -1.0,
                10.0,
                4.0,
            )
            .unwrap();
        // Level hits 0 at t=3, stays 0 until 5, then rises at +1/unit:
        // reaches 4 at t=9.
        assert_eq!(t, SimTime::from_whole_units(9));
    }

    #[test]
    fn next_breakpoint_cycle_wraps() {
        let f = PiecewiseConstant::new(
            vec![SimTime::ZERO, SimTime::from_whole_units(2), SimTime::from_whole_units(3)],
            vec![1.0, 2.0],
            Extension::Cycle,
        )
        .unwrap();
        assert_eq!(
            f.next_breakpoint_after(SimTime::from_whole_units(4)),
            Some(SimTime::from_whole_units(5))
        );
        assert_eq!(
            f.next_breakpoint_after(SimTime::from_whole_units(5)),
            Some(SimTime::from_whole_units(6))
        );
    }

    #[test]
    fn domain_stats() {
        let f = sample_fn();
        assert_eq!(f.domain_max(), 4.0);
        assert_eq!(f.domain_min(), 0.5);
        let mean = f.domain_mean();
        assert!((mean - (20.0 + 5.0 + 40.0) / 30.0).abs() < 1e-12);
    }
}
