//! Small statistics toolkit used by the experiment harness.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use harvest_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`RunningStats::new`]. Hand-written because the derived
/// `Default` would zero `min`/`max`, corrupting the extrema of any
/// all-positive or all-negative sample stream pushed into a
/// default-constructed accumulator.
impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observation must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`; 0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (normal approximation, `1.96 · SE`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// A value sampled on a fixed uniform time grid, supporting point-wise
/// averaging across many runs.
///
/// Used for the paper's remaining-energy curves (Figs. 6–7): each trial
/// produces one grid of samples; grids are averaged point-wise.
///
/// # Examples
///
/// ```
/// use harvest_sim::stats::SampledSeries;
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// let mut acc = SampledSeries::new(SimTime::ZERO, SimDuration::from_whole_units(10), 3);
/// acc.accumulate(&[1.0, 2.0, 3.0]);
/// acc.accumulate(&[3.0, 4.0, 5.0]);
/// assert_eq!(acc.mean_values(), vec![2.0, 3.0, 4.0]);
/// assert_eq!(acc.times()[1], SimTime::from_whole_units(10));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledSeries {
    start: SimTime,
    step: SimDuration,
    points: Vec<RunningStats>,
}

impl SampledSeries {
    /// Creates an accumulator for `len` samples starting at `start`,
    /// spaced `step` apart.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or `len` is zero.
    pub fn new(start: SimTime, step: SimDuration, len: usize) -> Self {
        assert!(step.is_positive(), "sample step must be positive");
        assert!(len > 0, "series must have at least one point");
        SampledSeries {
            start,
            step,
            points: vec![RunningStats::new(); len],
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the grid has no points (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sample instants of the grid.
    pub fn times(&self) -> Vec<SimTime> {
        (0..self.points.len())
            .map(|i| self.start + self.step * i as f64)
            .collect()
    }

    /// Adds one run's samples (must match the grid length).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the grid length.
    pub fn accumulate(&mut self, samples: &[f64]) {
        assert_eq!(
            samples.len(),
            self.points.len(),
            "sample grid length mismatch"
        );
        for (p, &x) in self.points.iter_mut().zip(samples) {
            p.push(x);
        }
    }

    /// Point-wise means.
    pub fn mean_values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.mean()).collect()
    }

    /// Point-wise 95% CI half-widths.
    pub fn ci95_values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.ci95_half_width()).collect()
    }

    /// Number of runs accumulated (taken from the first grid point).
    pub fn runs(&self) -> u64 {
        self.points.first().map_or(0, |p| p.count())
    }

    /// Merges another accumulator over the same grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn merge(&mut self, other: &SampledSeries) {
        assert_eq!(self.start, other.start, "grid start mismatch");
        assert_eq!(self.step, other.step, "grid step mismatch");
        assert_eq!(
            self.points.len(),
            other.points.len(),
            "grid length mismatch"
        );
        for (a, b) in self.points.iter_mut().zip(&other.points) {
            a.merge(b);
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping.
///
/// # Examples
///
/// ```
/// use harvest_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(9.5);
/// h.push(42.0); // clamped into the last bin
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 2]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds an observation, clamping out-of-range values into the edge
    /// bins.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(low_edge, high_edge)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn default_matches_new() {
        // Regression: the derived `Default` zeroed `min`/`max`, so a
        // default-constructed accumulator reported min = 0 for an
        // all-positive stream (and max = 0 for an all-negative one).
        assert_eq!(RunningStats::default(), RunningStats::new());
    }

    #[test]
    fn default_extrema_all_positive_stream() {
        let mut s = RunningStats::default();
        s.push(3.0);
        s.push(7.0);
        assert_eq!(s.min(), 3.0, "min must come from the data, not 0.0");
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn default_extrema_all_negative_stream() {
        let mut s = RunningStats::default();
        s.push(-4.0);
        s.push(-2.0);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), -2.0, "max must come from the data, not 0.0");
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [1.0, 2.5, -3.0, 7.5, 0.0, 12.25, 4.0];
        let (a, b) = data.split_at(3);
        let mut s1: RunningStats = a.iter().copied().collect();
        let s2: RunningStats = b.iter().copied().collect();
        s1.merge(&s2);
        let all: RunningStats = data.iter().copied().collect();
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-12);
        assert!((s1.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(s1.min(), all.min());
        assert_eq!(s1.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_observation_panics() {
        RunningStats::new().push(f64::INFINITY);
    }

    #[test]
    fn series_accumulates_pointwise() {
        let mut s = SampledSeries::new(SimTime::ZERO, SimDuration::from_whole_units(5), 2);
        s.accumulate(&[0.0, 10.0]);
        s.accumulate(&[2.0, 30.0]);
        assert_eq!(s.mean_values(), vec![1.0, 20.0]);
        assert_eq!(s.runs(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn series_merge_matches_accumulate() {
        let grid = |vals: &[&[f64]]| {
            let mut s = SampledSeries::new(SimTime::ZERO, SimDuration::from_whole_units(1), 3);
            for v in vals {
                s.accumulate(v);
            }
            s
        };
        let mut a = grid(&[&[1.0, 2.0, 3.0]]);
        let b = grid(&[&[3.0, 2.0, 1.0], &[5.0, 5.0, 5.0]]);
        a.merge(&b);
        let c = grid(&[&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0], &[5.0, 5.0, 5.0]]);
        assert_eq!(a.mean_values(), c.mean_values());
        assert_eq!(a.runs(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_rejects_wrong_length() {
        let mut s = SampledSeries::new(SimTime::ZERO, SimDuration::from_whole_units(1), 3);
        s.accumulate(&[1.0]);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.5);
        h.push(0.1);
        h.push(0.49);
        h.push(0.99);
        h.push(1.7);
        assert_eq!(h.counts(), &[2, 1, 0, 2]);
        let (lo, hi) = h.bin_edges(1);
        assert!((lo - 0.25).abs() < 1e-12 && (hi - 0.5).abs() < 1e-12);
    }
}
