//! Fixed-point simulation time.
//!
//! All simulation instants and durations are integer counts of *ticks*,
//! with [`TICKS_PER_UNIT`] ticks per paper "time unit". Using integers
//! keeps the event queue total-ordered and free of floating-point
//! pathologies (two events computed along different arithmetic paths that
//! "should" coincide actually do), while leaving six decimal digits of
//! sub-unit resolution for closed-form crossing times.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of ticks in one simulated time unit.
///
/// One paper "time unit" (the scale on which task periods like 10..100 and
/// simulation horizons like 10 000 are expressed) is subdivided into one
/// million ticks.
pub const TICKS_PER_UNIT: i64 = 1_000_000;

/// An instant in simulated time, measured in ticks since time zero.
///
/// `SimTime` is a point on the timeline; the difference of two instants is
/// a [`SimDuration`]. Negative instants are representable (useful for
/// phase offsets) but the simulators in this workspace never schedule
/// events before [`SimTime::ZERO`].
///
/// # Examples
///
/// ```
/// use harvest_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_units(2.5);
/// let later = t + SimDuration::from_units(0.5);
/// assert_eq!(later.as_units(), 3.0);
/// assert_eq!(later - t, SimDuration::from_units(0.5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(i64);

/// A signed span of simulated time, measured in ticks.
///
/// # Examples
///
/// ```
/// use harvest_sim::time::SimDuration;
///
/// let d = SimDuration::from_units(1.25);
/// assert_eq!((d * 2.0).as_units(), 2.5);
/// assert!(SimDuration::ZERO < d);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(i64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(i64::MAX);
    /// The smallest representable instant.
    pub const MIN: SimTime = SimTime(i64::MIN);

    /// Creates an instant from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: i64) -> Self {
        SimTime(ticks)
    }

    /// Creates an instant from a count of whole time units.
    ///
    /// # Panics
    ///
    /// Panics on overflow (more than ~9.2e12 units).
    #[inline]
    pub fn from_whole_units(units: i64) -> Self {
        SimTime(units.checked_mul(TICKS_PER_UNIT).expect("SimTime overflow"))
    }

    /// Creates an instant from a fractional number of time units,
    /// rounding to the nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `units` is not finite or overflows the tick range.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        SimTime(units_to_ticks(units))
    }

    /// Creates the earliest instant that is *not before* `units`,
    /// rounding fractional ticks up.
    ///
    /// Crossing times computed in floating point are converted with this
    /// so that the resulting event never fires *before* the true crossing,
    /// which guarantees monotone progress in the event loop.
    #[inline]
    pub fn from_units_ceil(units: f64) -> Self {
        SimTime(units_to_ticks_ceil(units))
    }

    /// Raw tick count since time zero.
    #[inline]
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// This instant expressed in fractional time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> Self {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(i64::MAX);
    /// A single tick, the smallest positive duration.
    pub const TICK: SimDuration = SimDuration(1);

    /// Creates a duration from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: i64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a duration from a count of whole time units.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[inline]
    pub fn from_whole_units(units: i64) -> Self {
        SimDuration(
            units
                .checked_mul(TICKS_PER_UNIT)
                .expect("SimDuration overflow"),
        )
    }

    /// Creates a duration from fractional time units, rounding to the
    /// nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `units` is not finite or overflows the tick range.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        SimDuration(units_to_ticks(units))
    }

    /// Creates the shortest duration that is *not shorter* than `units`.
    #[inline]
    pub fn from_units_ceil(units: f64) -> Self {
        SimDuration(units_to_ticks_ceil(units))
    }

    /// Raw tick count.
    #[inline]
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// This duration expressed in fractional time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// `true` if the duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` if the duration is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Returns the longer of two durations.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the shorter of two durations.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps a possibly negative duration to zero.
    #[inline]
    pub fn clamp_non_negative(self) -> Self {
        if self.0 < 0 {
            SimDuration::ZERO
        } else {
            self
        }
    }
}

fn units_to_ticks(units: f64) -> i64 {
    assert!(units.is_finite(), "time value must be finite, got {units}");
    let ticks = units * TICKS_PER_UNIT as f64;
    assert!(
        ticks >= i64::MIN as f64 && ticks <= i64::MAX as f64,
        "time value {units} overflows tick range"
    );
    // `ticks.round() as i64`, without the libm call: the cast truncates
    // toward zero, and the fractional remainder decides the half-away
    // adjustment. Exact for every in-range value — |ticks| >= 2^52 has
    // no fractional part, so the remainder is 0 there.
    let t = ticks as i64;
    let frac = ticks - t as f64;
    let t = t + (frac >= 0.5) as i64 - (frac <= -0.5) as i64;
    debug_assert_eq!(t, ticks.round() as i64);
    t
}

fn units_to_ticks_ceil(units: f64) -> i64 {
    assert!(units.is_finite(), "time value must be finite, got {units}");
    let ticks = units * TICKS_PER_UNIT as f64;
    assert!(
        ticks >= i64::MIN as f64 && ticks <= i64::MAX as f64,
        "time value {units} overflows tick range"
    );
    // `ticks.ceil() as i64` via truncation: bump when truncation went
    // down (positive non-integer values).
    let t = ticks as i64;
    let t = t + (ticks > t as f64) as i64;
    debug_assert_eq!(t, ticks.ceil() as i64);
    t
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Neg for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn neg(self) -> SimDuration {
        SimDuration(-self.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    /// Scales the duration, rounding to the nearest tick.
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_units(self.as_units() * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    /// Divides the duration, rounding to the nearest tick.
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_units(self.as_units() / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_units(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", format_units(self.0))
    }
}

fn format_units(ticks: i64) -> String {
    let sign = if ticks < 0 { "-" } else { "" };
    let abs = ticks.unsigned_abs();
    let whole = abs / TICKS_PER_UNIT as u64;
    let frac = abs % TICKS_PER_UNIT as u64;
    if frac == 0 {
        format!("{sign}{whole}")
    } else {
        let s = format!("{frac:06}");
        format!("{sign}{whole}.{}", s.trim_end_matches('0'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_unit_round_trip() {
        for u in [-3i64, 0, 1, 7, 10_000] {
            let t = SimTime::from_whole_units(u);
            assert_eq!(t.as_units(), u as f64);
            assert_eq!(t.as_ticks(), u * TICKS_PER_UNIT);
        }
    }

    #[test]
    fn fractional_round_trip_within_tick() {
        let t = SimTime::from_units(1.234_567_89);
        assert!((t.as_units() - 1.234_567_89).abs() < 1e-6);
    }

    #[test]
    fn ceil_conversion_never_early() {
        for raw in [0.1, 0.999_999_4, 1.000_000_1, 123.456_789_01] {
            let t = SimTime::from_units_ceil(raw);
            assert!(
                t.as_units() >= raw - 1e-12,
                "ceil({raw}) = {} fell before the true value",
                t.as_units()
            );
            assert!(t.as_units() - raw < 2.0 / TICKS_PER_UNIT as f64);
        }
    }

    #[test]
    fn ceil_is_exact_on_tick_boundaries() {
        assert_eq!(SimTime::from_units_ceil(2.0), SimTime::from_whole_units(2));
        assert_eq!(
            SimDuration::from_units_ceil(0.25).as_ticks(),
            TICKS_PER_UNIT / 4
        );
    }

    #[test]
    fn instant_duration_arithmetic() {
        let a = SimTime::from_whole_units(5);
        let b = SimTime::from_whole_units(8);
        assert_eq!(b - a, SimDuration::from_whole_units(3));
        assert_eq!(a + SimDuration::from_whole_units(3), b);
        assert_eq!(b - SimDuration::from_whole_units(3), a);
        let mut c = a;
        c += SimDuration::from_whole_units(1);
        assert_eq!(c, SimTime::from_whole_units(6));
    }

    #[test]
    fn duration_scaling_rounds_to_tick() {
        let d = SimDuration::from_whole_units(1);
        assert_eq!((d * 0.5).as_ticks(), TICKS_PER_UNIT / 2);
        assert_eq!((d / 4.0).as_ticks(), TICKS_PER_UNIT / 4);
    }

    #[test]
    fn negative_durations_behave() {
        let d = SimDuration::from_whole_units(-2);
        assert!(!d.is_positive());
        assert_eq!(d.clamp_non_negative(), SimDuration::ZERO);
        assert_eq!((-d).as_units(), 2.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_whole_units(1);
        let b = SimTime::from_whole_units(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_whole_units(1);
        let y = SimDuration::from_whole_units(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_formats_compactly() {
        assert_eq!(SimTime::from_whole_units(12).to_string(), "t=12");
        assert_eq!(SimTime::from_units(1.5).to_string(), "t=1.5");
        assert_eq!(SimDuration::from_units(-0.25).to_string(), "-0.25u");
        assert_eq!(SimDuration::ZERO.to_string(), "0u");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1.0, 2.0, 3.5]
            .iter()
            .map(|&u| SimDuration::from_units(u))
            .sum();
        assert_eq!(total, SimDuration::from_units(6.5));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let _ = SimTime::from_units(f64::NAN);
    }
}
