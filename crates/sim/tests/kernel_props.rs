//! Property-based tests of the simulation-kernel primitives.

use harvest_sim::event::EventQueue;
use harvest_sim::piecewise::{Extension, PiecewiseConstant};
use harvest_sim::stats::RunningStats;
use harvest_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = PiecewiseConstant> {
    (
        proptest::collection::vec(0.0f64..10.0, 1..40),
        1i64..5,
        prop_oneof![
            Just(Extension::Hold),
            Just(Extension::Zero),
            Just(Extension::Cycle)
        ],
    )
        .prop_map(|(values, dt, ext)| {
            PiecewiseConstant::from_samples(
                SimTime::ZERO,
                SimDuration::from_whole_units(dt),
                values,
                ext,
            )
            .expect("valid grid")
        })
}

/// Like [`profile_strategy`], but with sign-changing values, so the
/// prefix-vs-naive parity properties also exercise profiles whose
/// integral is non-monotone.
fn signed_profile_strategy() -> impl Strategy<Value = PiecewiseConstant> {
    (
        proptest::collection::vec(-6.0f64..10.0, 1..40),
        1i64..5,
        prop_oneof![
            Just(Extension::Hold),
            Just(Extension::Zero),
            Just(Extension::Cycle)
        ],
    )
        .prop_map(|(values, dt, ext)| {
            PiecewiseConstant::from_samples(
                SimTime::ZERO,
                SimDuration::from_whole_units(dt),
                values,
                ext,
            )
            .expect("valid grid")
        })
}

proptest! {
    /// ∫[a,c) = ∫[a,b) + ∫[b,c) for any a ≤ b ≤ c.
    #[test]
    fn integral_is_additive(
        profile in profile_strategy(),
        raw in proptest::collection::vec(-50.0f64..250.0, 3),
    ) {
        let mut ts: Vec<SimTime> = raw.iter().map(|&u| SimTime::from_units(u)).collect();
        ts.sort();
        let (a, b, c) = (ts[0], ts[1], ts[2]);
        let whole = profile.integrate(a, c);
        let split = profile.integrate(a, b) + profile.integrate(b, c);
        prop_assert!((whole - split).abs() < 1e-9 * (1.0 + whole.abs()),
            "{whole} vs {split}");
    }

    /// The integral over a window is bounded by min/max value times the
    /// window length (non-negative profiles).
    #[test]
    fn integral_respects_bounds(
        profile in profile_strategy(),
        a in 0.0f64..100.0,
        len in 0.0f64..100.0,
    ) {
        let t1 = SimTime::from_units(a);
        let t2 = SimTime::from_units(a + len);
        let e = profile.integrate(t1, t2);
        let span = (t2 - t1).as_units();
        // Extension::Zero can only push the effective min to 0.
        let hi = profile.domain_max() * span;
        prop_assert!(e >= -1e-9, "integral {e} of a non-negative profile");
        prop_assert!(e <= hi + 1e-9, "integral {e} above max bound {hi}");
    }

    /// Segments returned over a window tile it exactly and agree with
    /// point lookups.
    #[test]
    fn segments_tile_window(
        profile in profile_strategy(),
        a in -20.0f64..150.0,
        len in 0.01f64..120.0,
    ) {
        let t1 = SimTime::from_units(a);
        let t2 = SimTime::from_units(a + len);
        let segs: Vec<_> = profile.segments_between(t1, t2).collect();
        prop_assert!(!segs.is_empty());
        prop_assert_eq!(segs.first().unwrap().start, t1);
        prop_assert_eq!(segs.last().unwrap().end, t2);
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "gap in tiling");
        }
        for seg in &segs {
            prop_assert_eq!(profile.value_at(seg.start), seg.value);
        }
    }

    /// The event queue pops in (time, insertion) order regardless of
    /// the push order.
    #[test]
    fn event_queue_is_stable_priority_queue(
        times in proptest::collection::vec(0i64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn event_queue_cancellation(
        n in 1usize..100,
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..n)
            .map(|i| q.schedule(SimTime::from_ticks(i as i64 % 17), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                q.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, v)) = q.pop() {
            popped.push(v);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Welford merge equals sequential accumulation on arbitrary splits.
    #[test]
    fn running_stats_merge_any_split(
        data in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(data.len());
        let (a, b) = data.split_at(split);
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let all: RunningStats = data.iter().copied().collect();
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        let (v1, v2) = (left.population_variance(), all.population_variance());
        prop_assert!((v1 - v2).abs() <= 1e-6 * (1.0 + v2.abs()), "{v1} vs {v2}");
    }

    /// Accumulation crossing returns an instant at which stepping the
    /// level manually lands on the target (within tick rounding).
    #[test]
    fn accumulation_crossing_is_consistent(
        profile in profile_strategy(),
        initial_frac in 0.0f64..1.0,
        offset in -5.0f64..2.0,
        target_frac in 0.0f64..1.0,
    ) {
        let cap = 40.0;
        let initial = initial_frac * cap;
        let target = target_frac * cap;
        let horizon = SimTime::from_whole_units(500);
        if let Some(t) = profile.first_accumulation_crossing(
            SimTime::ZERO, horizon, initial, offset, cap, target,
        ) {
            prop_assert!(t >= SimTime::ZERO && t <= horizon);
            // Re-simulate the clamped accumulation up to t.
            let mut level = initial;
            for seg in profile.segments_between(SimTime::ZERO, t) {
                let rate = seg.value + offset;
                // Clamped linear evolution within the segment.
                let mut remaining = seg.duration().as_units();
                while remaining > 0.0 {
                    if (level <= 0.0 && rate < 0.0) || (level >= cap && rate > 0.0) {
                        break;
                    }
                    let until_clamp = if rate > 0.0 {
                        (cap - level) / rate
                    } else if rate < 0.0 {
                        level / -rate
                    } else {
                        f64::INFINITY
                    };
                    let step = remaining.min(until_clamp);
                    if step <= 0.0 { break; }
                    level = (level + rate * step).clamp(0.0, cap);
                    remaining -= step;
                }
            }
            // Tick rounding can overshoot by at most one tick of rate.
            let max_rate = profile.domain_max() + offset.abs() + 1.0;
            prop_assert!((level - target).abs() <= 2.0 * max_rate / 1e6 + 1e-9,
                "level {level} vs target {target} at {t}");
        }
    }

    /// The prefix-sum `integrate` agrees with the segment-walk baseline
    /// on arbitrary windows, including reversed (`t2 < t1`) and
    /// out-of-domain ones, under all three extension rules.
    #[test]
    fn prefix_integrate_matches_segment_walk(
        profile in signed_profile_strategy(),
        a in -80.0f64..300.0,
        b in -80.0f64..300.0,
    ) {
        let t1 = SimTime::from_units(a);
        let t2 = SimTime::from_units(b);
        let fast = profile.integrate(t1, t2);
        let naive = profile.integrate_naive(t1, t2);
        let scale = 1.0 + naive.abs() + (b - a).abs();
        prop_assert!((fast - naive).abs() < 1e-9 * scale,
            "prefix {fast} vs naive {naive} over [{a}, {b})");
    }

    /// Cursor-threaded queries return exactly what cold queries return,
    /// for any (not necessarily monotone) sequence of query times — the
    /// cursor is a pure accelerator.
    #[test]
    fn cursor_queries_match_cold_queries(
        profile in signed_profile_strategy(),
        times in proptest::collection::vec(-60.0f64..250.0, 1..30),
    ) {
        let mut cur = profile.cursor();
        for (i, &u) in times.iter().enumerate() {
            let t = SimTime::from_units(u);
            prop_assert_eq!(profile.value_at_with(&mut cur, t), profile.value_at(t),
                "value_at diverged at query {i} (t = {u})");
            let t2 = SimTime::from_units(u + 7.5);
            let threaded = profile.integrate_with(&mut cur, t, t2);
            let cold = profile.integrate(t, t2);
            prop_assert_eq!(threaded, cold,
                "integrate diverged at query {i} (t = {u})");
        }
    }

    /// The tiered crossing solver (O(1) reject / monotone bisection /
    /// clamped scan with period skipping) agrees with the plain
    /// whole-window scan: same reachability verdict and, when reached,
    /// the same instant up to one tick.
    #[test]
    fn crossing_fast_path_matches_naive(
        profile in signed_profile_strategy(),
        initial_frac in 0.0f64..1.0,
        offset in -5.0f64..3.0,
        target_frac in 0.0f64..1.0,
        horizon_units in 1i64..400,
    ) {
        let cap = 30.0;
        let initial = initial_frac * cap;
        let target = target_frac * cap;
        let horizon = SimTime::from_whole_units(horizon_units);
        let fast = profile.first_accumulation_crossing(
            SimTime::ZERO, horizon, initial, offset, cap, target,
        );
        let naive = profile.first_accumulation_crossing_naive(
            SimTime::ZERO, horizon, initial, offset, cap, target,
        );
        match (fast, naive) {
            (Some(f), Some(n)) => {
                let diff = (f.as_ticks() - n.as_ticks()).abs();
                prop_assert!(diff <= 1, "fast {f} vs naive {n}");
            }
            (None, None) => {}
            // A crossing right at the horizon may round across it in one
            // path and not the other; anything else is a real divergence.
            (Some(f), None) => prop_assert!(
                horizon.as_ticks() - f.as_ticks() <= 1,
                "fast found {f}, naive found nothing before {horizon}"
            ),
            (None, Some(n)) => prop_assert!(
                horizon.as_ticks() - n.as_ticks() <= 1,
                "naive found {n}, fast found nothing before {horizon}"
            ),
        }
    }

    /// Threading a cursor through the crossing solver does not change
    /// its answer.
    #[test]
    fn cursor_threaded_crossing_matches_cold(
        profile in signed_profile_strategy(),
        starts in proptest::collection::vec(0.0f64..120.0, 1..8),
        offset in -5.0f64..3.0,
        target_frac in 0.0f64..1.0,
    ) {
        let cap = 30.0;
        let initial = 0.5 * cap;
        let target = target_frac * cap;
        let mut cur = profile.cursor();
        let mut starts = starts;
        starts.sort_by(f64::total_cmp);
        for &s in &starts {
            let from = SimTime::from_units(s);
            let horizon = from + SimDuration::from_whole_units(150);
            let threaded = profile.first_accumulation_crossing_with(
                &mut cur, from, horizon, initial, offset, cap, target,
            );
            let cold = profile.first_accumulation_crossing(
                from, horizon, initial, offset, cap, target,
            );
            prop_assert_eq!(threaded, cold, "diverged for window starting at {}", s);
        }
    }
}
