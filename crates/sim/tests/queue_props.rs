//! Model-based property tests of the indexed event queue.
//!
//! The reference model is a naive sorted-`Vec`: schedule appends,
//! cancel retracts by sequence number, pop removes the `(time, seq)`
//! minimum. Arbitrary interleavings of schedule/cancel/pop — including
//! cancels aimed at events that already fired and bursts of
//! same-instant ties — must produce identical `(time, seq, payload)`
//! sequences from both implementations.

use harvest_sim::event::{EventId, EventQueue};
use harvest_sim::time::SimTime;
use proptest::prelude::*;

fn t(units: i64) -> SimTime {
    SimTime::from_whole_units(units)
}

/// The sorted-`Vec` reference: entries are `(time_units, seq, payload)`
/// and the pending minimum is recomputed from scratch on every query.
#[derive(Default)]
struct ModelQueue {
    live: Vec<(i64, u64, u32)>,
}

impl ModelQueue {
    fn schedule(&mut self, time: i64, seq: u64, payload: u32) {
        self.live.push((time, seq, payload));
    }

    /// Retracts the entry with sequence `seq`; `false` if it is gone.
    fn cancel(&mut self, seq: u64) -> bool {
        match self.live.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.live.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(i64, u64, u32)> {
        let i = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(time, seq, _))| (time, seq))
            .map(|(i, _)| i)?;
        Some(self.live.swap_remove(i))
    }

    fn peek_time(&self) -> Option<i64> {
        self.live.iter().map(|&(time, _, _)| time).min()
    }
}

proptest! {
    /// Arbitrary schedule/cancel/pop interleavings agree with the
    /// model, operation by operation.
    #[test]
    fn event_queue_matches_sorted_vec_model(
        ops in proptest::collection::vec((0u8..8, 0i64..6, 0usize..512), 1..250),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model = ModelQueue::default();
        // Every handle ever issued, live or not — cancel targets draw
        // from the full history, so cancel-after-pop, double-cancel,
        // and cancel-after-cancel are all exercised.
        let mut issued: Vec<(EventId, u64)> = Vec::new();
        let mut now = 0i64;
        let mut next_seq = 0u64;
        let mut next_payload = 0u32;

        for &(op, dt, target) in &ops {
            match op {
                // Weight scheduling heavily so queues actually grow;
                // dt is small so same-instant ties are common.
                0..=3 => {
                    let time = now + dt;
                    let payload = next_payload;
                    next_payload += 1;
                    let id = q.schedule(t(time), payload);
                    model.schedule(time, next_seq, payload);
                    issued.push((id, next_seq));
                    next_seq += 1;
                }
                4 | 5 => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (id, seq) = issued[target % issued.len()];
                    let expected = model.cancel(seq);
                    prop_assert_eq!(
                        q.cancel(id),
                        expected,
                        "cancel of seq {} disagreed with model",
                        seq
                    );
                }
                6 => {
                    let expected = model.pop();
                    let got = q.pop();
                    match (got, expected) {
                        (None, None) => {}
                        (Some((gt, gp)), Some((et, _, ep))) => {
                            prop_assert_eq!(gt, t(et), "pop time diverged");
                            prop_assert_eq!(gp, ep, "pop payload diverged");
                            now = et;
                        }
                        (got, expected) => prop_assert!(
                            false,
                            "pop mismatch: queue {:?}, model {:?}",
                            got,
                            expected
                        ),
                    }
                }
                _ => {
                    prop_assert_eq!(q.peek_time(), model.peek_time().map(t));
                    prop_assert_eq!(q.len(), model.live.len());
                    prop_assert_eq!(q.is_empty(), model.live.is_empty());
                }
            }
        }

        // Drain both to the end: the full remaining (time, payload)
        // sequence must match, ties resolved identically.
        loop {
            match (q.pop(), model.pop()) {
                (None, None) => break,
                (Some((gt, gp)), Some((et, _, ep))) => {
                    prop_assert_eq!(gt, t(et));
                    prop_assert_eq!(gp, ep);
                }
                (got, expected) => prop_assert!(
                    false,
                    "drain mismatch: queue {:?}, model {:?}",
                    got,
                    expected
                ),
            }
        }
    }

    /// Same-instant bursts fire strictly in scheduling order even when
    /// interleaved with cancellations of earlier burst members.
    #[test]
    fn same_instant_ties_survive_cancellation(
        n in 2usize..40,
        cancel_mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..n).map(|i| q.schedule(t(7), i)).collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        prop_assert_eq!(order, expected, "FIFO tie order broken by cancels");
    }

    /// Handles never outlive their event: after a pop, every handle to
    /// the popped event is dead, even if its slab slot was recycled by
    /// later schedules.
    #[test]
    fn stale_handles_stay_dead(
        times in proptest::collection::vec(0i64..5, 1..60),
    ) {
        let mut q = EventQueue::new();
        let mut dead: Vec<EventId> = Vec::new();
        for (i, &dt) in times.iter().enumerate() {
            let now = q.current_time().map_or(0, |t| t.as_ticks());
            let id = q.schedule(
                SimTime::from_ticks(now) + harvest_sim::time::SimDuration::from_whole_units(dt),
                i,
            );
            if i % 2 == 0 {
                // Fire it immediately; the handle is now stale.
                while let Some((_, v)) = q.pop() {
                    if v == i {
                        break;
                    }
                }
                dead.push(id);
            }
            for d in &dead {
                prop_assert!(!q.cancel(*d), "stale handle revived");
            }
        }
    }
}

proptest! {
    // Each case replays 20 000 operations against the O(n)-scan model,
    // so a handful of seeds already dwarfs the scripted suites above;
    // more would only slow the tier-1 run.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Long horizons exercise the radix structure across many bound
    /// advances (bucket drains, re-files, free-list churn) that short
    /// scripted runs rarely reach.
    #[test]
    fn long_runs_match_model(seed in any::<u64>()) {
        let mut rng = seed | 1;
        let mut step = move |m: u64| {
            // xorshift64*: deterministic, cheap, decorrelated draws.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) % m
        };
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model = ModelQueue::default();
        let mut issued: Vec<(EventId, u64)> = Vec::new();
        let mut now = 0i64;
        let mut next_seq = 0u64;

        for n in 0..20_000u32 {
            match step(10) {
                // Schedule near the present; dt 0 keeps ties frequent,
                // the occasional long jump spreads keys across radix
                // levels.
                0..=4 => {
                    let dt = if step(16) == 0 { step(100_000) } else { step(8) };
                    let time = now + dt as i64;
                    let id = q.schedule(t(time), n);
                    model.schedule(time, next_seq, n);
                    issued.push((id, next_seq));
                    next_seq += 1;
                }
                5 | 6 => {
                    if let Some((id, seq)) = issued
                        .get(step(issued.len().max(1) as u64) as usize)
                        .copied()
                    {
                        prop_assert_eq!(q.cancel(id), model.cancel(seq));
                    }
                }
                _ => {
                    let expected = model.pop();
                    let got = q.pop();
                    prop_assert_eq!(
                        got.map(|(gt, gp)| (gt.as_ticks(), gp)),
                        expected.map(|(et, _, ep)| (t(et).as_ticks(), ep))
                    );
                    if let Some((et, _, _)) = expected {
                        now = et;
                    }
                }
            }
            prop_assert_eq!(q.peek_time(), model.peek_time().map(t));
            prop_assert_eq!(q.len(), model.live.len());
        }
        while let Some((gt, gp)) = q.pop() {
            let (et, _, ep) = model.pop().expect("model drained early");
            prop_assert_eq!((gt, gp), (t(et), ep));
        }
        prop_assert!(model.pop().is_none(), "queue drained early");
    }
}
