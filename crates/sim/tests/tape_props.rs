//! Release-tape equivalence: a tape-driven trial must be bit-identical
//! to the heap-driven trial it elides events for.
//!
//! The tape replaces every `Arrival` the scalar engine would have
//! heap-scheduled with a cursor bump over a precomputed timeline, so
//! the only acceptable observable difference is throughput. This
//! property drives full paper trials — random utilization, capacity,
//! policy, sampling, and fault plans that rewrite the harvest profile
//! mid-run — and asserts both [`SimResult`] equality and byte-identity
//! of the serialized [`TrialSummary`] (the unit the sweep store
//! persists and content-addresses).
//!
//! [`SimResult`]: harvest_core::SimResult
//! [`TrialSummary`]: harvest_exp::cache::TrialSummary

use harvest_exp::cache::TrialSummary;
use harvest_exp::scenario::{PaperScenario, PolicyKind, SimPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn taped_trials_are_bit_identical_to_heap_trials(
        seed in 0u64..1024,
        utilization in prop_oneof![Just(0.3), Just(0.6), Just(0.9)],
        capacity in prop_oneof![Just(50.0), Just(300.0), Just(2000.0)],
        policy_index in 0usize..PolicyKind::ALL.len(),
        sample_units in prop_oneof![Just(None), Just(Some(50)), Just(Some(173))],
        fault_intensity in prop_oneof![Just(0.0), 0.25f64..1.0],
    ) {
        let policy = PolicyKind::ALL[policy_index];
        let mut scenario =
            PaperScenario::new(utilization, capacity).with_fault_intensity(fault_intensity);
        scenario.horizon_units = 500;
        if let Some(dt) = sample_units {
            scenario = scenario.with_sampling(dt);
        }

        let taped_prefab = scenario.prefab(seed);
        prop_assert!(taped_prefab.tape.is_some(), "prefabs carry the tape by default");
        let heap_prefab = taped_prefab.clone().without_tape();

        let mut pool = SimPool::new();
        let taped = scenario.run_prefab_in(&mut pool, policy, &taped_prefab);
        let heap = scenario.run_prefab_in(&mut pool, policy, &heap_prefab);
        prop_assert_eq!(&taped, &heap, "tape-driven run diverged from the heap-driven run");

        let taped_bytes = serde_json::to_string(&TrialSummary::of(&taped)).unwrap();
        let heap_bytes = serde_json::to_string(&TrialSummary::of(&heap)).unwrap();
        prop_assert_eq!(taped_bytes, heap_bytes, "TrialSummary bytes diverged");
    }
}
