//! # harvest-rt — energy-harvesting real-time scheduling in Rust
//!
//! A complete, production-quality reproduction of **"Energy Aware
//! Dynamic Voltage and Frequency Selection for Real-Time Systems with
//! Energy Harvesting"** (Liu, Qiu, Wu — DATE 2008): the EA-DVFS
//! scheduling policy, its LSA and EDF baselines, and every substrate the
//! paper's evaluation needs — a deterministic discrete-event kernel,
//! stochastic solar-source models, energy predictors, storage models, a
//! DVFS processor model, a periodic-workload generator, and the full
//! experiment harness regenerating Figures 5–9 and Table 1.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications can depend on `harvest-rt` alone.
//!
//! | Module | Backing crate | Contents |
//! |--------|---------------|----------|
//! | [`sim`] | `harvest-sim` | time, event queue, engine, piecewise functions, stats |
//! | [`energy`] | `harvest-energy` | sources, predictors, storage |
//! | [`cpu`] | `harvest-cpu` | DVFS processor models and presets |
//! | [`task`] | `harvest-task` | tasks, jobs, EDF queue, workload generator |
//! | [`core`] | `harvest-core` | EA-DVFS + baselines, the closed-loop simulator |
//! | [`obs`] | `harvest-obs` | metrics registry, phase profiling, JSONL export, timelines |
//! | [`exp`] | `harvest-exp` | figure/table reproduction harness |
//!
//! # Quickstart
//!
//! ```
//! use harvest_rt::prelude::*;
//!
//! // Build the paper's §5.1 world: XScale CPU, eq. 13 solar source,
//! // 5 periodic tasks at 40% utilization, 500-capacity storage.
//! let scenario = PaperScenario::new(0.4, 500.0);
//! let lsa = scenario.run(PolicyKind::Lsa, 0);
//! let ea = scenario.run(PolicyKind::EaDvfs, 0);
//! assert!(ea.miss_rate() <= lsa.miss_rate());
//! ```

#![warn(missing_docs)]

/// Deterministic discrete-event simulation kernel (re-export of
/// `harvest-sim`).
pub mod sim {
    pub use harvest_sim::*;
}

/// Energy-harvesting models: sources, predictors, storage (re-export of
/// `harvest-energy`).
pub mod energy {
    pub use harvest_energy::*;
}

/// DVFS processor models (re-export of `harvest-cpu`).
pub mod cpu {
    pub use harvest_cpu::*;
}

/// Real-time task model (re-export of `harvest-task`).
pub mod task {
    pub use harvest_task::*;
}

/// EA-DVFS, baselines, and the closed-loop simulator (re-export of
/// `harvest-core`).
pub mod core {
    pub use harvest_core::*;
}

/// Observability: metrics registry, phase profiling, JSONL export, run
/// timelines (re-export of `harvest-obs`).
pub mod obs {
    pub use harvest_obs::*;
}

/// Experiment harness reproducing the paper's evaluation (re-export of
/// `harvest-exp`).
pub mod exp {
    pub use harvest_exp::*;
}

/// The names most applications need.
pub mod prelude {
    pub use harvest_core::config::{MissPolicy, SystemConfig};
    pub use harvest_core::policies::{
        EaDvfsScheduler, EdfScheduler, GreedyStretchScheduler, LazyScheduler,
        StaticSlowdownScheduler,
    };
    pub use harvest_core::result::{JobOutcome, SimResult};
    pub use harvest_core::scheduler::{Decision, SchedContext, Scheduler};
    pub use harvest_core::system::simulate;
    pub use harvest_cpu::{presets, CpuModel, FrequencyLevel, PowerLaw};
    pub use harvest_energy::predictor::{
        BiasedPredictor, EnergyPredictor, EwmaSlotPredictor, MovingAveragePredictor,
        OraclePredictor, PersistencePredictor,
    };
    pub use harvest_energy::source::{sample_profile, HarvestSource};
    pub use harvest_energy::sources::{
        ConstantSource, DayNightSource, MarkovWeatherSource, SolarModel, TraceSource,
    };
    pub use harvest_energy::storage::{Storage, StorageSpec};
    pub use harvest_exp::scenario::{PaperScenario, PolicyKind, PredictorKind};
    pub use harvest_sim::piecewise::{Extension, PiecewiseConstant};
    pub use harvest_sim::time::{SimDuration, SimTime};
    pub use harvest_task::generator::WorkloadSpec;
    pub use harvest_task::task::Task;
    pub use harvest_task::taskset::TaskSet;
}
