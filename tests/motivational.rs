//! Integration tests: the paper's §2 and §4.3 worked examples, verified
//! end-to-end through the facade with exact numbers.

use harvest_rt::prelude::*;

fn u(x: i64) -> SimTime {
    SimTime::from_whole_units(x)
}

fn d(x: i64) -> SimDuration {
    SimDuration::from_whole_units(x)
}

/// §2 tasks: τ1 = (0, 16, 4), τ2 = (5, 16, 1.5).
fn section2_tasks() -> TaskSet {
    TaskSet::new(vec![
        Task::once(u(0), d(16), 4.0),
        Task::once(u(5), d(16), 1.5),
    ])
}

fn section2_config() -> SystemConfig {
    SystemConfig::new(
        presets::two_speed_example(),
        StorageSpec::ideal(1_000.0),
        d(30),
    )
    .with_initial_level(24.0)
    .with_trace()
}

fn run(
    policy: Box<dyn Scheduler>,
    tasks: &TaskSet,
    config: SystemConfig,
    harvest: f64,
) -> SimResult {
    let profile = PiecewiseConstant::constant(harvest);
    simulate(
        config,
        tasks,
        profile.clone(),
        policy,
        Box::new(OraclePredictor::new(profile)),
    )
}

#[test]
fn section2_lsa_starts_tau1_at_12_and_misses_tau2() {
    let r = run(
        Box::new(LazyScheduler::new()),
        &section2_tasks(),
        section2_config(),
        0.5,
    );
    // Paper: "the system starts running task τ1 at time 12 … finishes it
    // at time 16. The system depletes all energy exactly at time 16."
    match r.jobs[0].outcome {
        JobOutcome::Completed { at } => assert_eq!(at, u(16)),
        ref o => panic!("τ1 should complete at 16, got {o:?}"),
    }
    assert!(r.jobs[1].missed_deadline(), "τ2 must starve under LSA");
    // Energy at τ1's completion is ~0 — check via the sample-free route:
    // τ2 then cannot gather 12 units by t=21 (only 2.5 arrives).
    assert_eq!(r.missed(), 1);
}

#[test]
fn section2_ea_dvfs_meets_both_deadlines() {
    let r = run(
        Box::new(EaDvfsScheduler::new()),
        &section2_tasks(),
        section2_config(),
        0.5,
    );
    assert_eq!(r.missed(), 0);
    // τ1 stretched at half speed over [4, 12).
    match r.jobs[0].outcome {
        JobOutcome::Completed { at } => assert_eq!(at, u(12)),
        ref o => panic!("τ1 should complete at 12, got {o:?}"),
    }
    // τ2 runs at half speed starting ≈16.06 and completes ≈19.06 < 21.
    match r.jobs[1].outcome {
        JobOutcome::Completed { at } => {
            assert!(at > u(19) && at < u(20), "τ2 completed at {at}");
        }
        ref o => panic!("τ2 should complete, got {o:?}"),
    }
}

#[test]
fn section2_ea_dvfs_uses_low_speed_for_tau1() {
    let r = run(
        Box::new(EaDvfsScheduler::new()),
        &section2_tasks(),
        section2_config(),
        0.5,
    );
    // All busy time at the slow level — the fast level is never needed.
    assert!(
        r.level_time[0] > 10.0,
        "slow-level time {}",
        r.level_time[0]
    );
    assert_eq!(r.level_time[1], 0.0, "full-speed time {}", r.level_time[1]);
}

/// §4.3 tasks: τ1 = (0, 16, 4), τ2 = (5, 12, 1.5).
fn fig3_tasks() -> TaskSet {
    TaskSet::new(vec![
        Task::once(u(0), d(16), 4.0),
        Task::once(u(5), d(12), 1.5),
    ])
}

fn fig3_config() -> SystemConfig {
    SystemConfig::new(
        presets::quarter_speed_example(),
        StorageSpec::ideal(1_000.0),
        d(30),
    )
    .with_initial_level(32.0)
    .with_trace()
}

#[test]
fn fig3_greedy_stretch_finishes_tau1_at_16_and_misses_tau2() {
    let r = run(
        Box::new(GreedyStretchScheduler::new()),
        &fig3_tasks(),
        fig3_config(),
        0.0,
    );
    // Paper: "if the system executes the task at fn until τ1 is finished
    // at time instance 0 + 4/0.25 = 16, then the system has no way to
    // finish task τ2 before its deadline."
    match r.jobs[0].outcome {
        JobOutcome::Completed { at } => assert_eq!(at, u(16)),
        ref o => panic!("τ1 should crawl to completion at 16, got {o:?}"),
    }
    assert!(r.jobs[1].missed_deadline());
}

#[test]
fn fig3_ea_dvfs_switches_at_s2_and_meets_both() {
    let r = run(
        Box::new(EaDvfsScheduler::new()),
        &fig3_tasks(),
        fig3_config(),
        0.0,
    );
    assert_eq!(r.missed(), 0, "jobs: {:?}", r.jobs);
    // The paper freezes s2 = 12 at selection time and finishes τ1 at 13.
    // Our online variant recomputes s2 at every scheduling event with
    // the *current* stored energy (the Fig. 4 loop reads "t ⇐ current
    // time"), so the full-speed switch converges slightly later and τ1
    // finishes a bit after 13 — but always before its deadline 16, and
    // with *less* energy spent (see the bookkeeping test below). The
    // deviation is documented in DESIGN.md.
    match r.jobs[0].outcome {
        JobOutcome::Completed { at } => {
            assert!(at >= u(13) && at < u(16), "τ1 completed at {at}");
        }
        ref o => panic!("τ1 should complete, got {o:?}"),
    }
    match r.jobs[1].outcome {
        JobOutcome::Completed { at } => assert!(at <= u(17)),
        ref o => panic!("τ2 should complete, got {o:?}"),
    }
    // Both levels were exercised: slow before the switch, full speed
    // after (and for τ2).
    assert!(r.level_time[0] > 10.0, "slow time {}", r.level_time[0]);
    assert!(r.level_time[1] > 0.0, "full-speed time {}", r.level_time[1]);
}

#[test]
fn fig3_energy_bookkeeping_matches_paper() {
    let r = run(
        Box::new(EaDvfsScheduler::new()),
        &fig3_tasks(),
        fig3_config(),
        0.0,
    );
    // The paper's frozen schedule (slow on [0,12), fast on [12,13))
    // consumes 12·1 + 1·8 = 20 for τ1. Online recomputation stays slow
    // longer, so τ1 must consume at most that — and clearly more than
    // the all-slow lower bound 4/0.25·1 = 16.
    let tau1_energy = r.jobs[0].energy;
    assert!(
        tau1_energy > 16.0 && tau1_energy <= 20.0 + 1e-6,
        "τ1 energy {tau1_energy} should lie in (16, 20]"
    );
    // τ2 at full speed: 1.5 · 8 = 12.
    assert!(
        (r.jobs[1].energy - 12.0).abs() < 1e-6,
        "τ2 energy {}",
        r.jobs[1].energy
    );
}
