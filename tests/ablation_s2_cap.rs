//! Ablation: the §4.3 `s2` cap. Removing it (greedy stretching) must
//! never help and must hurt on workloads with back-to-back deadlines.

use harvest_rt::prelude::*;

#[test]
fn s2_cap_matters_on_paper_workloads() {
    // Across a pool of seeded paper scenarios, full EA-DVFS should miss
    // no more than the capless variant in aggregate, and strictly less
    // somewhere.
    let scenario = PaperScenario::new(0.6, 300.0);
    let seeds = 0..20u64;
    let mut ea_missed = 0usize;
    let mut greedy_missed = 0usize;
    for seed in seeds {
        ea_missed += scenario.run(PolicyKind::EaDvfs, seed).missed();
        greedy_missed += scenario.run(PolicyKind::GreedyStretch, seed).missed();
    }
    assert!(
        ea_missed <= greedy_missed,
        "the s2 cap should not increase misses (ea {ea_missed} vs greedy {greedy_missed})"
    );
}

#[test]
fn greedy_stretch_still_beats_lsa_sometimes() {
    // The strawman is not a strawman against LSA — stretching still
    // saves energy; it only loses to full EA-DVFS. Check it functions.
    let scenario = PaperScenario::new(0.4, 300.0);
    let mut greedy_total = 0.0;
    let mut lsa_total = 0.0;
    for seed in 0..10 {
        greedy_total += scenario.run(PolicyKind::GreedyStretch, seed).miss_rate();
        lsa_total += scenario.run(PolicyKind::Lsa, seed).miss_rate();
    }
    assert!(
        greedy_total <= lsa_total + 0.5,
        "greedy stretch should be in LSA's ballpark (greedy {greedy_total:.2} vs lsa {lsa_total:.2})"
    );
}

#[test]
fn fig3_is_the_minimal_separating_instance() {
    // The exact paper instance separates the two policies: greedy
    // misses τ2, EA-DVFS meets it. (Exact traces are asserted in
    // motivational.rs; here we pin the *separation* itself.)
    let tasks = TaskSet::new(vec![
        Task::once(SimTime::ZERO, SimDuration::from_whole_units(16), 4.0),
        Task::once(
            SimTime::from_whole_units(5),
            SimDuration::from_whole_units(12),
            1.5,
        ),
    ]);
    let profile = PiecewiseConstant::constant(0.0);
    let config = SystemConfig::new(
        presets::quarter_speed_example(),
        StorageSpec::ideal(1_000.0),
        SimDuration::from_whole_units(30),
    )
    .with_initial_level(32.0);
    let run = |p: Box<dyn Scheduler>| {
        simulate(
            config.clone(),
            &tasks,
            profile.clone(),
            p,
            Box::new(OraclePredictor::new(profile.clone())),
        )
    };
    let greedy = run(Box::new(GreedyStretchScheduler::new()));
    let ea = run(Box::new(EaDvfsScheduler::new()));
    assert_eq!(greedy.missed(), 1);
    assert_eq!(ea.missed(), 0);
}
