//! Statistical integration tests of the paper's headline claims, at a
//! scale small enough for CI but large enough to be stable.

use harvest_rt::exp::figures::{min_zero_miss_capacity, miss_rate_figure, source_figure};
use harvest_rt::prelude::*;

/// Fig. 5: the eq. 13 source realization has the paper's shape.
#[test]
fn source_statistics_match_eq13() {
    let fig = source_figure(0, 10_000);
    assert!((fig.mean - 2.0).abs() < 0.3, "mean {}", fig.mean);
    assert!(fig.max > 10.0, "peak {}", fig.max);
    // The cos² envelope forces recurring dead zones: a noticeable
    // fraction of samples must be near zero.
    let near_zero = fig.power.iter().filter(|&&p| p < 0.1).count();
    assert!(near_zero > 1_000, "only {near_zero} near-zero samples");
}

/// Mean normalized remaining energy at one capacity, averaged over
/// seeds — the kernel of the Fig. 6/7 procedure.
fn mean_remaining(policy: PolicyKind, utilization: f64, capacity: f64, trials: u64) -> f64 {
    let mut total = 0.0;
    for seed in 0..trials {
        let scenario = PaperScenario::new(utilization, capacity).with_sampling(200);
        let r = scenario.run(policy, seed);
        let run_mean: f64 = r.samples.iter().map(|&(_, v)| v).sum::<f64>() / r.samples.len() as f64;
        total += run_mean / capacity / trials as f64;
    }
    total
}

/// Fig. 6: at U = 0.4 the EA-DVFS system retains clearly more energy.
/// (The gap concentrates at small capacities — C = 200 is the smallest
/// of the paper's sweep and shows it most clearly.)
#[test]
fn fig6_ea_dvfs_retains_more_energy_at_low_utilization() {
    let lsa = mean_remaining(PolicyKind::Lsa, 0.4, 200.0, 6);
    let ea = mean_remaining(PolicyKind::EaDvfs, 0.4, 200.0, 6);
    assert!(
        ea > lsa + 0.03,
        "EA-DVFS should store noticeably more: ea {ea:.3} vs lsa {lsa:.3}"
    );
}

/// Fig. 7: at U = 0.8 the two systems store nearly the same energy —
/// the gap collapses relative to U = 0.4.
#[test]
fn fig7_curves_close_at_high_utilization() {
    let gap = |u: f64| {
        mean_remaining(PolicyKind::EaDvfs, u, 200.0, 6)
            - mean_remaining(PolicyKind::Lsa, u, 200.0, 6)
    };
    let gap_low_u = gap(0.4);
    let gap_high_u = gap(0.8);
    assert!(
        gap_high_u.abs() < gap_low_u.abs(),
        "high-U gap {gap_high_u:.3} should shrink vs low-U gap {gap_low_u:.3}"
    );
    assert!(
        gap_high_u.abs() < 0.05,
        "high-U gap should be small, got {gap_high_u:.3}"
    );
}

/// Fig. 8: at U = 0.4 EA-DVFS cuts the average miss rate by a large
/// margin (paper: over 50%).
#[test]
fn fig8_miss_rate_reduction_at_low_utilization() {
    let fig = miss_rate_figure(0.4, &[PolicyKind::Lsa, PolicyKind::EaDvfs], 8, 4);
    let lsa = fig.mean_miss_rate(PolicyKind::Lsa).unwrap();
    let ea = fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap();
    assert!(lsa > 0.0, "sweep must include miss-inducing capacities");
    let reduction = (lsa - ea) / lsa;
    assert!(
        reduction > 0.35,
        "expected a large reduction, got {:.0}% (lsa {lsa:.3}, ea {ea:.3})",
        100.0 * reduction
    );
}

/// Fig. 9: at U = 0.8 the policies perform comparably.
#[test]
fn fig9_policies_comparable_at_high_utilization() {
    let fig = miss_rate_figure(0.8, &[PolicyKind::Lsa, PolicyKind::EaDvfs], 8, 4);
    let lsa = fig.mean_miss_rate(PolicyKind::Lsa).unwrap();
    let ea = fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap();
    // EA-DVFS never does worse, and the relative gap collapses.
    assert!(ea <= lsa + 0.02, "ea {ea:.3} vs lsa {lsa:.3}");
    let rel_gap = (lsa - ea) / lsa.max(1e-9);
    assert!(
        rel_gap < 0.45,
        "relative gap should shrink at U = 0.8, got {rel_gap:.2}"
    );
}

/// Miss rates fall (weakly) as capacity grows, for both policies.
#[test]
fn miss_rate_decreases_with_capacity() {
    let fig = miss_rate_figure(0.4, &[PolicyKind::Lsa, PolicyKind::EaDvfs], 6, 4);
    for policy in [PolicyKind::Lsa, PolicyKind::EaDvfs] {
        let curve = fig.curve(policy).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(
            last <= first,
            "{}: miss rate should not grow with capacity ({first:.3} → {last:.3})",
            policy.name()
        );
    }
}

/// Table 1: the Cmin ratio is large at U = 0.2 and shrinks toward 1 as
/// utilization grows.
#[test]
fn table1_ratio_shrinks_with_utilization() {
    let trials = 3;
    let threads = 4;
    let ratio_at = |u: f64| {
        let lsa = min_zero_miss_capacity(PolicyKind::Lsa, u, trials, threads, 1e7, 0.01);
        let ea = min_zero_miss_capacity(PolicyKind::EaDvfs, u, trials, threads, 1e7, 0.01);
        assert!(
            lsa.is_finite() && ea.is_finite(),
            "U={u}: search must converge"
        );
        lsa / ea
    };
    let low = ratio_at(0.2);
    let high = ratio_at(0.8);
    assert!(
        low > 1.15,
        "U=0.2 ratio should be clearly above 1, got {low:.2}"
    );
    assert!(high < low, "ratio should shrink: {low:.2} → {high:.2}");
    assert!(high < 1.5, "U=0.8 ratio should be near 1, got {high:.2}");
}
