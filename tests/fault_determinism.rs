//! Property-based determinism guarantees for the fault-injection
//! subsystem (ISSUE 5, satellite c): the same `(scenario, seed,
//! FaultPlan)` triple must replay bit-identically, and a zero-intensity
//! plan must be indistinguishable from running with no plan at all.

use harvest_rt::core::fault::FaultPlan;
use harvest_rt::prelude::*;
use proptest::prelude::*;

/// A random faulted §5.1-style cell.
fn faulted_cell_strategy() -> impl Strategy<Value = (PolicyKind, f64, f64, f64, u64)> {
    (
        prop_oneof![
            Just(PolicyKind::Edf),
            Just(PolicyKind::Lsa),
            Just(PolicyKind::EaDvfs),
        ],
        0.1f64..0.9,     // utilization
        50.0f64..3000.0, // capacity
        0.05f64..1.0,    // fault intensity (strictly positive: armed)
        0u64..1_000,     // seed
    )
}

fn short_scenario(utilization: f64, capacity: f64) -> PaperScenario {
    let mut s = PaperScenario::new(utilization, capacity).with_sampling(100);
    s.horizon_units = 2_000; // keep each proptest case fast
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same (scenario, seed, FaultPlan) => bit-identical `SimResult`s.
    #[test]
    fn faulted_runs_replay_bit_identically(
        (policy, u, c, intensity, seed) in faulted_cell_strategy()
    ) {
        let s = short_scenario(u, c).with_fault_intensity(intensity);
        let a = s.run(policy, seed);
        let b = s.run(policy, seed);
        prop_assert_eq!(a, b);
    }

    /// The plan itself is a pure function of the trial seed.
    #[test]
    fn fault_plans_are_pure_functions_of_the_seed(
        (_, u, c, intensity, seed) in faulted_cell_strategy()
    ) {
        let s = short_scenario(u, c).with_fault_intensity(intensity);
        prop_assert_eq!(s.fault_plan(seed), s.fault_plan(seed));
    }

    /// A zero-intensity FaultPlan produces results bit-identical to a
    /// fault-free run: injection must be a strict no-op when disarmed.
    #[test]
    fn zero_intensity_matches_fault_free(
        (policy, u, c, _, seed) in faulted_cell_strategy()
    ) {
        let clean = short_scenario(u, c);
        let disarmed = short_scenario(u, c).with_fault_intensity(0.0);
        prop_assert_eq!(disarmed.fault_plan(seed), None,
            "zero intensity must not arm a plan");
        let a = clean.run(policy, seed);
        let b = disarmed.run(policy, seed);
        prop_assert_eq!(a, b);
    }
}

/// An explicitly empty `FaultPlan` attached to the config is also a
/// strict no-op (the `SystemConfig` normalizes it away), so callers can
/// thread a plan unconditionally.
#[test]
fn empty_plan_is_normalized_away() {
    let s = PaperScenario::new(0.4, 500.0);
    let cpu = harvest_rt::cpu::presets::xscale();
    let empty = FaultPlan::generate(9, 0.0, SimDuration::from_whole_units(10_000), &cpu);
    assert!(empty.is_empty());
    let plain = s.config(); // fault-free config
    let threaded = s.config().with_fault_plan(empty);
    assert_eq!(plain.fault_plan, threaded.fault_plan);
    assert_eq!(threaded.fault_plan, None);
}
