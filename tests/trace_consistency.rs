//! Structural invariants of the scheduling trace: the event log must
//! tell the same story as the result records.

use std::collections::{HashMap, HashSet};

use harvest_rt::core::trace::TraceEvent;
use harvest_rt::prelude::*;
use harvest_rt::sim::trace::TraceSink;
use harvest_rt::task::JobId;

/// A streaming trace validator: checks ordering and lifecycle invariants
/// online, as each event arrives, holding only per-job state — the shape
/// a live monitor attached to the engine would take, as opposed to the
/// post-hoc whole-trace scan in `trace_agrees_with_records`.
#[derive(Debug, Default)]
struct InvariantSink {
    last_time: Option<SimTime>,
    released: HashSet<JobId>,
    completed: HashSet<JobId>,
    missed: HashSet<JobId>,
    records: u64,
}

impl TraceSink<TraceEvent> for InvariantSink {
    fn record(&mut self, t: SimTime, ev: TraceEvent) {
        if let Some(last) = self.last_time {
            assert!(t >= last, "timestamps regress: {t:?} after {last:?}");
        }
        self.last_time = Some(t);
        self.records += 1;
        match ev {
            TraceEvent::Released { job, deadline, .. } => {
                assert!(deadline > t, "{job:?} released with past deadline");
                assert!(self.released.insert(job), "{job:?} released twice");
            }
            TraceEvent::Started { job, .. } => {
                assert!(self.released.contains(&job), "{job:?} started unreleased");
                assert!(
                    !self.completed.contains(&job),
                    "{job:?} started after completing"
                );
                assert!(
                    !self.missed.contains(&job),
                    "{job:?} started after missing (abort semantics)"
                );
            }
            TraceEvent::Completed { job } => {
                assert!(self.released.contains(&job), "{job:?} completed unreleased");
                assert!(!self.missed.contains(&job), "{job:?} completed after miss");
                assert!(self.completed.insert(job), "{job:?} completed twice");
            }
            TraceEvent::Missed { job } => {
                assert!(self.released.contains(&job), "{job:?} missed unreleased");
                assert!(
                    !self.completed.contains(&job),
                    "{job:?} missed after completion"
                );
                assert!(self.missed.insert(job), "{job:?} missed twice");
            }
            TraceEvent::Idled { .. }
            | TraceEvent::Stalled { .. }
            | TraceEvent::HarvestFault { .. }
            | TraceEvent::LevelLockout { .. } => {}
        }
    }
}

impl InvariantSink {
    /// End-of-run check: every released job is resolved as completed or
    /// missed, except those the result legitimately carries as pending
    /// (deadline beyond the horizon).
    fn finish(&self, r: &SimResult) {
        assert_eq!(self.released.len(), r.released(), "release count");
        let pending: HashSet<JobId> = r
            .jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Pending))
            .map(|j| j.id)
            .collect();
        for &job in &self.released {
            let resolved = self.completed.contains(&job) || self.missed.contains(&job);
            assert!(
                resolved || pending.contains(&job),
                "{job:?} released but never resolved (and not pending at horizon)"
            );
        }
        for j in &r.jobs {
            match j.outcome {
                JobOutcome::Completed { .. } => assert!(self.completed.contains(&j.id)),
                JobOutcome::Missed { .. } => assert!(self.missed.contains(&j.id)),
                JobOutcome::Pending => assert!(
                    !self.completed.contains(&j.id) && !self.missed.contains(&j.id),
                    "pending {:?} has terminal trace events",
                    j.id
                ),
            }
        }
    }
}

fn traced_run(policy: PolicyKind, seed: u64) -> SimResult {
    let profile = sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(3_000),
        SimDuration::from_whole_units(1),
        seed,
    )
    .expect("valid grid");
    let tasks = WorkloadSpec::paper(5, 0.5, profile.domain_mean(), 3.2).generate(seed + 1);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::ideal(150.0),
        SimDuration::from_whole_units(3_000),
    )
    .with_trace();
    simulate(
        config,
        &tasks,
        profile.clone(),
        policy.build(),
        Box::new(OraclePredictor::new(profile)),
    )
}

#[test]
fn trace_agrees_with_records() {
    for policy in [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs] {
        for seed in 0..4u64 {
            let r = traced_run(policy, seed);
            let mut released: HashSet<JobId> = HashSet::new();
            let mut completed: HashSet<JobId> = HashSet::new();
            let mut missed: HashSet<JobId> = HashSet::new();
            let mut last_time = SimTime::ZERO;
            for &(t, ev) in &r.trace {
                assert!(t >= last_time, "{policy:?}: trace must be time-ordered");
                last_time = t;
                match ev {
                    TraceEvent::Released { job, deadline, .. } => {
                        assert!(released.insert(job), "double release of {job:?}");
                        assert!(deadline > t);
                    }
                    TraceEvent::Started { job, level } => {
                        assert!(released.contains(&job), "started unreleased {job:?}");
                        assert!(!completed.contains(&job), "started finished {job:?}");
                        assert!(level < 5, "XScale has 5 levels");
                    }
                    TraceEvent::Completed { job } => {
                        assert!(released.contains(&job));
                        assert!(completed.insert(job), "double completion of {job:?}");
                    }
                    TraceEvent::Missed { job } => {
                        assert!(released.contains(&job));
                        assert!(missed.insert(job), "double miss of {job:?}");
                        assert!(!completed.contains(&job), "missed after completing");
                    }
                    TraceEvent::Idled { .. }
                    | TraceEvent::Stalled { .. }
                    | TraceEvent::HarvestFault { .. }
                    | TraceEvent::LevelLockout { .. } => {}
                }
            }
            // Trace counts match the records.
            assert_eq!(released.len(), r.released(), "{policy:?} released");
            assert_eq!(missed.len(), r.missed(), "{policy:?} missed");
            // Every record outcome has its trace counterpart.
            let by_outcome: HashMap<JobId, &JobOutcome> =
                r.jobs.iter().map(|j| (j.id, &j.outcome)).collect();
            for (&job, outcome) in &by_outcome {
                match outcome {
                    JobOutcome::Completed { .. } => {
                        assert!(
                            completed.contains(&job),
                            "{policy:?}: {job:?} completion untracked"
                        );
                    }
                    JobOutcome::Missed { .. } => {
                        assert!(missed.contains(&job), "{policy:?}: {job:?} miss untracked");
                    }
                    JobOutcome::Pending => {
                        assert!(
                            !completed.contains(&job) && !missed.contains(&job),
                            "{policy:?}: pending job {job:?} has terminal trace events"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn streaming_invariant_sink_validates_all_policies() {
    for policy in [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs] {
        for seed in 0..3u64 {
            let r = traced_run(policy, seed);
            assert!(!r.trace.is_empty(), "{policy:?}: traced run must emit");
            let mut sink = InvariantSink::default();
            for &(t, ev) in &r.trace {
                sink.record(t, ev);
            }
            assert_eq!(sink.records, r.trace.len() as u64);
            sink.finish(&r);
        }
    }
}

#[test]
fn untraced_runs_keep_no_events() {
    let r = PaperScenario::new(0.4, 500.0).run(PolicyKind::EaDvfs, 0);
    assert!(r.trace.is_empty(), "tracing must be opt-in");
}

#[test]
fn lsa_trace_contains_idle_waits() {
    // LSA's defining behaviour: deliberate idling before starts.
    let r = traced_run(PolicyKind::Lsa, 1);
    let idles = r
        .trace
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Idled { until: Some(_) }))
        .count();
    assert!(idles > 0, "LSA should idle-wait at least once");
}
