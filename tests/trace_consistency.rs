//! Structural invariants of the scheduling trace: the event log must
//! tell the same story as the result records.

use std::collections::{HashMap, HashSet};

use harvest_rt::core::trace::TraceEvent;
use harvest_rt::prelude::*;
use harvest_rt::task::JobId;

fn traced_run(policy: PolicyKind, seed: u64) -> SimResult {
    let profile = sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(3_000),
        SimDuration::from_whole_units(1),
        seed,
    )
    .expect("valid grid");
    let tasks = WorkloadSpec::paper(5, 0.5, profile.domain_mean(), 3.2).generate(seed + 1);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::ideal(150.0),
        SimDuration::from_whole_units(3_000),
    )
    .with_trace();
    simulate(
        config,
        &tasks,
        profile.clone(),
        policy.build(),
        Box::new(OraclePredictor::new(profile)),
    )
}

#[test]
fn trace_agrees_with_records() {
    for policy in [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs] {
        for seed in 0..4u64 {
            let r = traced_run(policy, seed);
            let mut released: HashSet<JobId> = HashSet::new();
            let mut completed: HashSet<JobId> = HashSet::new();
            let mut missed: HashSet<JobId> = HashSet::new();
            let mut last_time = SimTime::ZERO;
            for &(t, ev) in &r.trace {
                assert!(t >= last_time, "{policy:?}: trace must be time-ordered");
                last_time = t;
                match ev {
                    TraceEvent::Released { job, deadline, .. } => {
                        assert!(released.insert(job), "double release of {job:?}");
                        assert!(deadline > t);
                    }
                    TraceEvent::Started { job, level } => {
                        assert!(released.contains(&job), "started unreleased {job:?}");
                        assert!(!completed.contains(&job), "started finished {job:?}");
                        assert!(level < 5, "XScale has 5 levels");
                    }
                    TraceEvent::Completed { job } => {
                        assert!(released.contains(&job));
                        assert!(completed.insert(job), "double completion of {job:?}");
                    }
                    TraceEvent::Missed { job } => {
                        assert!(released.contains(&job));
                        assert!(missed.insert(job), "double miss of {job:?}");
                        assert!(!completed.contains(&job), "missed after completing");
                    }
                    TraceEvent::Idled { .. } | TraceEvent::Stalled { .. } => {}
                }
            }
            // Trace counts match the records.
            assert_eq!(released.len(), r.released(), "{policy:?} released");
            assert_eq!(missed.len(), r.missed(), "{policy:?} missed");
            // Every record outcome has its trace counterpart.
            let by_outcome: HashMap<JobId, &JobOutcome> =
                r.jobs.iter().map(|j| (j.id, &j.outcome)).collect();
            for (&job, outcome) in &by_outcome {
                match outcome {
                    JobOutcome::Completed { .. } => {
                        assert!(
                            completed.contains(&job),
                            "{policy:?}: {job:?} completion untracked"
                        );
                    }
                    JobOutcome::Missed { .. } => {
                        assert!(missed.contains(&job), "{policy:?}: {job:?} miss untracked");
                    }
                    JobOutcome::Pending => {
                        assert!(
                            !completed.contains(&job) && !missed.contains(&job),
                            "{policy:?}: pending job {job:?} has terminal trace events"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn untraced_runs_keep_no_events() {
    let r = PaperScenario::new(0.4, 500.0).run(PolicyKind::EaDvfs, 0);
    assert!(r.trace.is_empty(), "tracing must be opt-in");
}

#[test]
fn lsa_trace_contains_idle_waits() {
    // LSA's defining behaviour: deliberate idling before starts.
    let r = traced_run(PolicyKind::Lsa, 1);
    let idles = r
        .trace
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Idled { until: Some(_) }))
        .count();
    assert!(idles > 0, "LSA should idle-wait at least once");
}
