//! Pinned bit-identicality suite for the Fig. 5–9 scenario family.
//!
//! Every observable here — engine event counts, job outcomes, energy
//! bookkeeping, full trace sequences — was captured from a known-good
//! build and hard-coded. The hot-path data structures (event queue,
//! EDF ready queue, scenario prefabs) are free to change internally,
//! but any drift in event ordering or arithmetic shows up as a hash
//! mismatch and fails this suite.
//!
//! The fingerprints are FNV-1a over the exact field values (`f64`s via
//! `to_bits`), so a single flipped bit anywhere in a run is caught.

use harvest_rt::core::result::{JobOutcome, SimResult};
use harvest_rt::core::trace::TraceEvent;
use harvest_rt::prelude::*;

const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01B3)
}

fn trace_hash(trace: &[(SimTime, TraceEvent)]) -> u64 {
    let mut h = FNV_SEED;
    for &(t, ev) in trace {
        h = fnv(h, t.as_ticks() as u64);
        let (tag, a, b, c) = match ev {
            TraceEvent::Released {
                job,
                task,
                deadline,
            } => (1u64, job.0, task as u64, deadline.as_ticks() as u64),
            TraceEvent::Started { job, level } => (2, job.0, level as u64, 0),
            TraceEvent::Completed { job } => (3, job.0, 0, 0),
            TraceEvent::Missed { job } => (4, job.0, 0, 0),
            TraceEvent::Idled { until } => {
                (5, until.map_or(u64::MAX, |t| t.as_ticks() as u64), 0, 0)
            }
            TraceEvent::Stalled { until } => {
                (6, until.map_or(u64::MAX, |t| t.as_ticks() as u64), 0, 0)
            }
            TraceEvent::HarvestFault { factor, active } => (7, factor.to_bits(), active as u64, 0),
            TraceEvent::LevelLockout { level, locked } => (8, level as u64, locked as u64, 0),
        };
        h = fnv(h, tag);
        h = fnv(h, a);
        h = fnv(h, b);
        h = fnv(h, c);
    }
    h
}

fn energy_hash(r: &SimResult) -> u64 {
    let mut h = FNV_SEED;
    for v in [
        r.energy.harvested,
        r.energy.consumed,
        r.energy.overflow,
        r.energy.deficit,
        r.energy.initial_level,
        r.energy.final_level,
        r.idle_time,
        r.stall_time,
    ] {
        h = fnv(h, v.to_bits());
    }
    for &lt in &r.level_time {
        h = fnv(h, lt.to_bits());
    }
    h
}

fn jobs_hash(r: &SimResult) -> u64 {
    let mut h = FNV_SEED;
    for j in &r.jobs {
        h = fnv(h, j.id.0);
        h = fnv(h, j.arrival.as_ticks() as u64);
        h = fnv(h, j.deadline.as_ticks() as u64);
        h = fnv(h, j.wcet.to_bits());
        h = fnv(h, j.energy.to_bits());
        let (tag, at) = match j.outcome {
            JobOutcome::Completed { at } => (1u64, at.as_ticks() as u64),
            JobOutcome::Missed { completed } => {
                (2, completed.map_or(u64::MAX, |t| t.as_ticks() as u64))
            }
            JobOutcome::Pending => (3, 0),
        };
        h = fnv(h, tag);
        h = fnv(h, at);
    }
    h
}

fn samples_hash(r: &SimResult) -> u64 {
    let mut h = FNV_SEED;
    for &(t, v) in &r.samples {
        h = fnv(h, t.as_ticks() as u64);
        h = fnv(h, v.to_bits());
    }
    h
}

/// Pinned observables for one untraced sweep trial.
struct Pinned {
    events: u64,
    released: usize,
    missed: usize,
    switches: u64,
    trace_events: u64,
    energy_hash: u64,
    jobs_hash: u64,
}

/// Pinned observables for one traced + sampled run.
struct Traced {
    events: u64,
    trace_len: usize,
    trace_hash: u64,
    samples_hash: u64,
}

#[rustfmt::skip]
const PINNED: &[(f64, f64, PolicyKind, u64, Pinned)] = &[
    (0.4, 500.0, PolicyKind::Edf, 0, Pinned { events: 8053, released: 2212, missed: 0, switches: 0, trace_events: 8058, energy_hash: 0xEC01A36876F716C3, jobs_hash: 0xEED1D699FC362B93 }),
    (0.4, 500.0, PolicyKind::Edf, 1, Pinned { events: 9995, released: 2700, missed: 0, switches: 0, trace_events: 10000, energy_hash: 0xEA872424EFDD072F, jobs_hash: 0x38D34C3868043B1B }),
    (0.4, 500.0, PolicyKind::Edf, 7, Pinned { events: 2921, released: 839, missed: 0, switches: 0, trace_events: 2926, energy_hash: 0x556630B5A8A5750E, jobs_hash: 0x829321ACC079AE2D }),
    (0.4, 500.0, PolicyKind::Lsa, 0, Pinned { events: 8053, released: 2212, missed: 0, switches: 0, trace_events: 8058, energy_hash: 0xEC01A36876F716C3, jobs_hash: 0xEED1D699FC362B93 }),
    (0.4, 500.0, PolicyKind::Lsa, 1, Pinned { events: 9995, released: 2700, missed: 0, switches: 0, trace_events: 10000, energy_hash: 0xEA872424EFDD072F, jobs_hash: 0x38D34C3868043B1B }),
    (0.4, 500.0, PolicyKind::Lsa, 7, Pinned { events: 2921, released: 839, missed: 0, switches: 0, trace_events: 2926, energy_hash: 0x556630B5A8A5750E, jobs_hash: 0x829321ACC079AE2D }),
    (0.4, 500.0, PolicyKind::EaDvfs, 0, Pinned { events: 8053, released: 2212, missed: 0, switches: 0, trace_events: 8058, energy_hash: 0xEC01A36876F716C3, jobs_hash: 0xEED1D699FC362B93 }),
    (0.4, 500.0, PolicyKind::EaDvfs, 1, Pinned { events: 9995, released: 2700, missed: 0, switches: 0, trace_events: 10000, energy_hash: 0xEA872424EFDD072F, jobs_hash: 0x38D34C3868043B1B }),
    (0.4, 500.0, PolicyKind::EaDvfs, 7, Pinned { events: 2921, released: 839, missed: 0, switches: 0, trace_events: 2926, energy_hash: 0x556630B5A8A5750E, jobs_hash: 0x829321ACC079AE2D }),
    (0.4, 200.0, PolicyKind::Edf, 0, Pinned { events: 11703, released: 2212, missed: 66, switches: 0, trace_events: 10331, energy_hash: 0xB1868AAF7E37EA18, jobs_hash: 0x068E9FEBC890C7F5 }),
    (0.4, 200.0, PolicyKind::Edf, 1, Pinned { events: 13443, released: 2700, missed: 93, switches: 0, trace_events: 12113, energy_hash: 0x3A21DCD201A9B86E, jobs_hash: 0x33DC718EA2C3964B }),
    (0.4, 200.0, PolicyKind::Edf, 7, Pinned { events: 6582, released: 839, missed: 7, switches: 0, trace_events: 5333, energy_hash: 0x0B5A1AC78BA81726, jobs_hash: 0x4DA7133B6BD23B95 }),
    (0.4, 200.0, PolicyKind::Lsa, 0, Pinned { events: 8779, released: 2212, missed: 44, switches: 0, trace_events: 8671, energy_hash: 0x4908E955A8F88693, jobs_hash: 0x7C6ECC2F6A6F290C }),
    (0.4, 200.0, PolicyKind::Lsa, 1, Pinned { events: 10655, released: 2700, missed: 65, switches: 0, trace_events: 10523, energy_hash: 0x4EC6E0E230E000F7, jobs_hash: 0x841D6DAB154617DC }),
    (0.4, 200.0, PolicyKind::Lsa, 7, Pinned { events: 3354, released: 839, missed: 8, switches: 0, trace_events: 3335, energy_hash: 0x147E1FD89B249436, jobs_hash: 0x7E76C23E8E3A3617 }),
    (0.4, 200.0, PolicyKind::EaDvfs, 0, Pinned { events: 9745, released: 2212, missed: 0, switches: 895, trace_events: 8839, energy_hash: 0xE0ADFF5BF9EBB5BB, jobs_hash: 0x993CEE646CC58A11 }),
    (0.4, 200.0, PolicyKind::EaDvfs, 1, Pinned { events: 11217, released: 2700, missed: 0, switches: 724, trace_events: 10575, energy_hash: 0xB320DDA6A94DDF6C, jobs_hash: 0x462341AA53B38B83 }),
    (0.4, 200.0, PolicyKind::EaDvfs, 7, Pinned { events: 4820, released: 839, missed: 0, switches: 471, trace_events: 3844, energy_hash: 0xC236A9DD16CBCE84, jobs_hash: 0xE12711C23E5057B6 }),
    (0.8, 200.0, PolicyKind::Edf, 0, Pinned { events: 15407, released: 2212, missed: 644, switches: 0, trace_events: 12374, energy_hash: 0x707925510299F397, jobs_hash: 0x6F759B0EAB43BEFF }),
    (0.8, 200.0, PolicyKind::Edf, 1, Pinned { events: 17413, released: 2700, missed: 770, switches: 0, trace_events: 14182, energy_hash: 0xB16FF84C41679FE7, jobs_hash: 0x5BC287E85BD7B02D }),
    (0.8, 200.0, PolicyKind::Edf, 7, Pinned { events: 9612, released: 839, missed: 251, switches: 0, trace_events: 7210, energy_hash: 0x701BD7021FD52104, jobs_hash: 0x55B8390AA52EA811 }),
    (0.8, 200.0, PolicyKind::Lsa, 0, Pinned { events: 9973, released: 2212, missed: 582, switches: 0, trace_events: 9238, energy_hash: 0xF73E8B20152126F4, jobs_hash: 0x3DF810853AB90C51 }),
    (0.8, 200.0, PolicyKind::Lsa, 1, Pinned { events: 12042, released: 2700, missed: 668, switches: 0, trace_events: 11168, energy_hash: 0x04C74540F0C8EC4A, jobs_hash: 0xAED9204509680A9F }),
    (0.8, 200.0, PolicyKind::Lsa, 7, Pinned { events: 4088, released: 839, missed: 247, switches: 0, trace_events: 3709, energy_hash: 0x4FD4F98E680738E4, jobs_hash: 0x0CEB48E85DB68259 }),
    (0.8, 200.0, PolicyKind::EaDvfs, 0, Pinned { events: 13116, released: 2212, missed: 435, switches: 912, trace_events: 10745, energy_hash: 0x3C3123C8A8E1F713, jobs_hash: 0x36367C111513A3D7 }),
    (0.8, 200.0, PolicyKind::EaDvfs, 1, Pinned { events: 15736, released: 2700, missed: 478, switches: 894, trace_events: 12885, energy_hash: 0x1520C5388BE7FDBD, jobs_hash: 0x3055CDC41A99E5A1 }),
    (0.8, 200.0, PolicyKind::EaDvfs, 7, Pinned { events: 6775, released: 839, missed: 180, switches: 419, trace_events: 5068, energy_hash: 0x66B0E2FD47DC911B, jobs_hash: 0x84D554C6139079F6 }),
    (0.8, 1000.0, PolicyKind::Edf, 0, Pinned { events: 14090, released: 2212, missed: 515, switches: 0, trace_events: 11652, energy_hash: 0x2E8AB40ACA42A9F6, jobs_hash: 0xA99C0302AD317B1F }),
    (0.8, 1000.0, PolicyKind::Edf, 1, Pinned { events: 15543, released: 2700, missed: 534, switches: 0, trace_events: 13204, energy_hash: 0x2521435E6CC8295D, jobs_hash: 0xCA95E182108A9121 }),
    (0.8, 1000.0, PolicyKind::Edf, 7, Pinned { events: 8633, released: 839, missed: 202, switches: 0, trace_events: 6604, energy_hash: 0xE2CD9986F531BD27, jobs_hash: 0x06EC2C53E0AF8076 }),
    (0.8, 1000.0, PolicyKind::Lsa, 0, Pinned { events: 9692, released: 2212, missed: 446, switches: 0, trace_events: 9113, energy_hash: 0x7852618CE757D8DF, jobs_hash: 0xFB9F5ACE826F6A71 }),
    (0.8, 1000.0, PolicyKind::Lsa, 1, Pinned { events: 11683, released: 2700, missed: 468, switches: 0, trace_events: 11014, energy_hash: 0x2BF2ACFE986728EA, jobs_hash: 0xF0348136D6342EC5 }),
    (0.8, 1000.0, PolicyKind::Lsa, 7, Pinned { events: 3955, released: 839, missed: 195, switches: 0, trace_events: 3641, energy_hash: 0x1D4CF311A8D4E450, jobs_hash: 0x3D2D1F76BC21EC12 }),
    (0.8, 1000.0, PolicyKind::EaDvfs, 0, Pinned { events: 12400, released: 2212, missed: 314, switches: 804, trace_events: 10394, energy_hash: 0x4B88B7A8EBBF0394, jobs_hash: 0x1909778F4C6A6A84 }),
    (0.8, 1000.0, PolicyKind::EaDvfs, 1, Pinned { events: 14838, released: 2700, missed: 291, switches: 751, trace_events: 12482, energy_hash: 0xA5D32C89E399AD77, jobs_hash: 0xE7626D7F1B507861 }),
    (0.8, 1000.0, PolicyKind::EaDvfs, 7, Pinned { events: 6413, released: 839, missed: 130, switches: 379, trace_events: 4854, energy_hash: 0x2E0DFBFEF9B778E7, jobs_hash: 0x0B433917B35B9B8C }),
];

#[rustfmt::skip]
const TRACED: &[(PolicyKind, u64, Traced)] = &[
    (PolicyKind::Edf, 0, Traced { events: 8093, trace_len: 8058, trace_hash: 0x47358C81031CD27A, samples_hash: 0xAE90733A861C46D0 }),
    (PolicyKind::Edf, 3, Traced { events: 3961, trace_len: 3926, trace_hash: 0xFBE432A76761B45C, samples_hash: 0x6E5F8A4350AE18F4 }),
    (PolicyKind::Lsa, 0, Traced { events: 8297, trace_len: 8263, trace_hash: 0xB06C6AE26C5ED071, samples_hash: 0x98CCEE06D26DAC3B }),
    (PolicyKind::Lsa, 3, Traced { events: 4172, trace_len: 4137, trace_hash: 0x5685B2907545CC1C, samples_hash: 0xBFEAE1BCEFDC2695 }),
    (PolicyKind::EaDvfs, 0, Traced { events: 8982, trace_len: 8467, trace_hash: 0x1E1AD8BCEEDD3244, samples_hash: 0x71EC468390037339 }),
    (PolicyKind::EaDvfs, 3, Traced { events: 4852, trace_len: 4351, trace_hash: 0xF10D3AFE3F4DAD98, samples_hash: 0xC99D31EA3A2A54DC }),
];

#[test]
fn sweep_runs_stay_bit_identical() {
    for (u, cap, policy, seed, want) in PINNED {
        let r = PaperScenario::new(*u, *cap).run(*policy, *seed);
        let ctx = format!("u={u} cap={cap} policy={policy:?} seed={seed}");
        assert_eq!(r.events, want.events, "events drifted ({ctx})");
        assert_eq!(r.released(), want.released, "released drifted ({ctx})");
        assert_eq!(r.missed(), want.missed, "missed drifted ({ctx})");
        assert_eq!(r.switches, want.switches, "switches drifted ({ctx})");
        assert_eq!(
            r.trace_events, want.trace_events,
            "trace_events drifted ({ctx})"
        );
        assert_eq!(
            energy_hash(&r),
            want.energy_hash,
            "energy accounting drifted ({ctx})"
        );
        assert_eq!(jobs_hash(&r), want.jobs_hash, "job records drifted ({ctx})");
    }
}

#[test]
fn traced_runs_stay_bit_identical() {
    for (policy, seed, want) in TRACED {
        let scenario = PaperScenario::new(0.4, 300.0).with_sampling(250);
        let profile = scenario.profile(*seed);
        let tasks = scenario.taskset(*seed, &profile);
        let config = SystemConfig::new(
            scenario.cpu(),
            StorageSpec::ideal(scenario.capacity),
            SimDuration::from_whole_units(scenario.horizon_units),
        )
        .with_sample_interval(SimDuration::from_whole_units(250))
        .with_trace();
        let predictor = scenario.predictor.build(&profile);
        let r = simulate(config, &tasks, profile, policy.build(), predictor);
        let ctx = format!("policy={policy:?} seed={seed}");
        assert_eq!(r.events, want.events, "events drifted ({ctx})");
        assert_eq!(
            r.trace.len(),
            want.trace_len,
            "trace length drifted ({ctx})"
        );
        assert_eq!(
            r.trace_events, want.trace_len as u64,
            "trace_events must match retained trace length ({ctx})"
        );
        assert_eq!(
            trace_hash(&r.trace),
            want.trace_hash,
            "trace sequence drifted ({ctx})"
        );
        assert_eq!(
            samples_hash(&r),
            want.samples_hash,
            "storage samples drifted ({ctx})"
        );
    }
}

/// The counting fast path and the retained trace must agree: a sweep
/// run (no trace) counts exactly as many emissions as a traced run of
/// the same trial retains records.
#[test]
fn counted_and_retained_traces_agree() {
    for policy in [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs] {
        let scenario = PaperScenario::new(0.6, 400.0);
        let counted = scenario.run(policy, 2);
        assert!(
            counted.trace.is_empty(),
            "sweep runs must not retain traces"
        );

        let profile = scenario.profile(2);
        let tasks = scenario.taskset(2, &profile);
        let config = SystemConfig::new(
            scenario.cpu(),
            StorageSpec::ideal(scenario.capacity),
            SimDuration::from_whole_units(scenario.horizon_units),
        )
        .with_trace();
        let predictor = scenario.predictor.build(&profile);
        let traced = simulate(config, &tasks, profile, policy.build(), predictor);

        assert_eq!(counted.trace_events, traced.trace.len() as u64);
        assert_eq!(counted.events, traced.events);
        assert_eq!(jobs_hash(&counted), jobs_hash(&traced));
    }
}
