//! §4.3 theorem: with infinite storage, EA-DVFS degenerates to plain
//! EDF — identical job-by-job outcomes on arbitrary workloads.

use harvest_rt::prelude::*;
use proptest::prelude::*;

fn outcomes(result: &SimResult) -> Vec<(usize, Option<i64>)> {
    result
        .jobs
        .iter()
        .map(|j| {
            let at = match j.outcome {
                JobOutcome::Completed { at } => Some(at.as_ticks()),
                _ => None,
            };
            (j.task_index, at)
        })
        .collect()
}

fn run_with(policy: Box<dyn Scheduler>, tasks: &TaskSet, harvest: f64) -> SimResult {
    let profile = PiecewiseConstant::constant(harvest);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::infinite(),
        SimDuration::from_whole_units(500),
    );
    simulate(
        config,
        tasks,
        profile.clone(),
        policy,
        Box::new(OraclePredictor::new(profile)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random periodic workloads (feasible U ≤ 1): identical outcome
    /// vectors under EDF and EA-DVFS once the storage is unbounded.
    #[test]
    fn ea_dvfs_equals_edf_with_infinite_storage(
        periods in proptest::collection::vec(1i64..=10, 1..5),
        target_u in 0.05f64..0.95,
        harvest in 0.0f64..4.0,
    ) {
        let tasks: TaskSet = periods
            .iter()
            .map(|&k| Task::periodic_implicit(
                SimDuration::from_whole_units(10 * k),
                k as f64, // placeholder, rescaled below
            ))
            .collect();
        let tasks = tasks.scaled_to_utilization(target_u);

        let edf = run_with(Box::new(EdfScheduler::new()), &tasks, harvest);
        let ea = run_with(Box::new(EaDvfsScheduler::new()), &tasks, harvest);
        prop_assert_eq!(outcomes(&edf), outcomes(&ea));
        // Infinite *capacity* does not mean infinite *energy*: with a
        // weak source the (identical) runs may still stall and miss.
        // Only when the source alone can carry full-speed execution is
        // the feasible EDF workload guaranteed miss-free.
        if harvest >= 3.2 {
            prop_assert_eq!(edf.missed(), 0);
        }
    }
}

#[test]
fn degeneration_holds_on_paper_workload() {
    let spec = WorkloadSpec::paper(5, 0.6, 2.0, 3.2);
    for seed in 0..10 {
        let tasks = spec.generate(seed);
        let edf = run_with(Box::new(EdfScheduler::new()), &tasks, 2.0);
        let ea = run_with(Box::new(EaDvfsScheduler::new()), &tasks, 2.0);
        assert_eq!(outcomes(&edf), outcomes(&ea), "seed {seed}");
    }
}
