//! Integration tests for the extensions beyond the paper's core:
//! execution-time variation (slack), the static-slowdown baseline, the
//! offline analysis module, and biased prediction.

use harvest_rt::core::policies::StaticSlowdownScheduler;
use harvest_rt::prelude::*;
use harvest_rt::task::analysis::{edf_schedulable, is_sustainable, worst_case_deficit};

fn paper_profile(seed: u64, horizon: i64) -> PiecewiseConstant {
    sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(horizon),
        SimDuration::from_whole_units(1),
        seed,
    )
    .expect("valid grid")
}

/// Early completions can only help: for every policy, miss counts with
/// bcet 0.5 are no higher than with full-WCET jobs on paired seeds.
#[test]
fn slack_never_hurts() {
    let horizon = 4_000i64;
    for policy in [PolicyKind::Lsa, PolicyKind::EaDvfs] {
        let mut full = 0usize;
        let mut slack = 0usize;
        for seed in 0..8u64 {
            let profile = paper_profile(seed, horizon);
            let mk_tasks = |bcet: f64| {
                WorkloadSpec::paper(5, 0.6, profile.domain_mean(), 3.2)
                    .with_bcet_ratio(bcet)
                    .generate(seed + 1)
            };
            let config = SystemConfig::new(
                presets::xscale(),
                StorageSpec::ideal(150.0),
                SimDuration::from_whole_units(horizon),
            );
            let run = |tasks: &TaskSet| {
                simulate(
                    config.clone(),
                    tasks,
                    profile.clone(),
                    policy.build(),
                    Box::new(OraclePredictor::new(profile.clone())),
                )
            };
            full += run(&mk_tasks(1.0)).missed();
            slack += run(&mk_tasks(0.5)).missed();
        }
        assert!(
            slack <= full,
            "{}: slack ({slack}) should not miss more than full WCET ({full})",
            policy.name()
        );
    }
}

/// Jobs with actual < wcet complete early and the recorded energy is
/// proportionally smaller.
#[test]
fn early_completion_consumes_less_energy() {
    let tasks_full = TaskSet::new(vec![Task::once(
        SimTime::ZERO,
        SimDuration::from_whole_units(20),
        4.0,
    )]);
    let tasks_half = TaskSet::new(vec![Task::once(
        SimTime::ZERO,
        SimDuration::from_whole_units(20),
        4.0,
    )
    .with_actual_work(2.0)]);
    let profile = PiecewiseConstant::constant(5.0);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::ideal(1_000.0),
        SimDuration::from_whole_units(30),
    );
    let run = |tasks: &TaskSet| {
        simulate(
            config.clone(),
            tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile.clone())),
        )
    };
    let full = run(&tasks_full);
    let half = run(&tasks_half);
    assert_eq!(full.missed() + half.missed(), 0);
    assert!((half.jobs[0].energy - full.jobs[0].energy / 2.0).abs() < 1e-6);
    match (half.jobs[0].outcome, full.jobs[0].outcome) {
        (JobOutcome::Completed { at: h }, JobOutcome::Completed { at: f }) => {
            assert!(h < f, "half job {h} should finish before full job {f}");
        }
        other => panic!("both should complete: {other:?}"),
    }
}

/// Static slowdown runs everything at its fixed level and misses only
/// for energy reasons; with ample energy a feasible set is miss-free.
#[test]
fn static_slowdown_feasible_with_ample_energy() {
    let tasks = TaskSet::new(vec![
        Task::periodic_implicit(SimDuration::from_whole_units(10), 2.0),
        Task::periodic_implicit(SimDuration::from_whole_units(20), 4.0),
    ]); // U = 0.4 → XScale level with S = 0.4
    let profile = PiecewiseConstant::constant(10.0);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::ideal(10_000.0),
        SimDuration::from_whole_units(400),
    );
    let cpu = presets::xscale();
    let r = simulate(
        config,
        &tasks,
        profile.clone(),
        Box::new(StaticSlowdownScheduler::new(&cpu, tasks.utilization())),
        Box::new(OraclePredictor::new(profile)),
    );
    assert_eq!(r.missed(), 0, "jobs: {:?}", r.jobs);
    // All busy time at the statically selected level (index 1, S=0.4).
    assert!(r.level_time[1] > 0.0);
    assert_eq!(r.level_time[0], 0.0);
    assert_eq!(r.level_time[4], 0.0);
}

/// Static slowdown spends less busy-energy than EDF on the same
/// workload (the point of DVFS), while EA-DVFS adapts between the two.
#[test]
fn static_slowdown_saves_energy_vs_edf() {
    let tasks = TaskSet::new(vec![Task::periodic_implicit(
        SimDuration::from_whole_units(10),
        4.0,
    )]); // U = 0.4
    let profile = PiecewiseConstant::constant(10.0);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::ideal(10_000.0),
        SimDuration::from_whole_units(500),
    );
    let cpu = presets::xscale();
    let run = |policy: Box<dyn Scheduler>| {
        simulate(
            config.clone(),
            &tasks,
            profile.clone(),
            policy,
            Box::new(OraclePredictor::new(profile.clone())),
        )
    };
    let edf = run(Box::new(EdfScheduler::new()));
    let slow = run(Box::new(StaticSlowdownScheduler::new(&cpu, 0.4)));
    assert_eq!(edf.missed() + slow.missed(), 0);
    assert!(
        slow.energy.consumed < edf.energy.consumed * 0.5,
        "static slowdown {:.0} should spend well under EDF {:.0}",
        slow.energy.consumed,
        edf.energy.consumed
    );
}

/// The analysis module agrees with simulation on the paper workloads:
/// generated sets are always EDF-schedulable (U ≤ 1, implicit
/// deadlines), and the worst-case deficit bounds the capacity needed.
#[test]
fn analysis_agrees_with_simulation() {
    for seed in 0..10u64 {
        let profile = paper_profile(seed, 4_000);
        let tasks = WorkloadSpec::paper(5, 0.6, profile.domain_mean(), 3.2).generate(seed);
        assert!(edf_schedulable(&tasks).is_schedulable());
        // Sustainability matches the mean-power comparison.
        let sustainable = is_sustainable(&profile, &tasks, 3.2);
        assert_eq!(sustainable, profile.domain_mean() >= 0.6 * 3.2);
    }
}

/// A capacity at least the worst-case full-speed deficit (plus the
/// paper's initial-full assumption) lets EDF run the §2-style constant
/// workload without energy misses.
#[test]
fn worst_case_deficit_sizes_storage() {
    let profile = PiecewiseConstant::from_samples(
        SimTime::ZERO,
        SimDuration::from_whole_units(50),
        vec![4.0, 0.0, 4.0, 0.0],
        harvest_rt::sim::piecewise::Extension::Cycle,
    )
    .unwrap();
    let tasks = TaskSet::new(vec![Task::periodic_implicit(
        SimDuration::from_whole_units(10),
        2.0,
    )]); // U = 0.2, demand at full speed bursts to 3.2
         // Continuous-demand bound: deficit of running flat out at U·Pmax.
    let deficit = worst_case_deficit(&profile, 0.2 * 3.2);
    assert!(deficit > 0.0);
    let config = SystemConfig::new(
        presets::xscale(),
        StorageSpec::ideal(deficit * 4.0),
        SimDuration::from_whole_units(1_000),
    );
    let r = simulate(
        config,
        &tasks,
        profile.clone(),
        Box::new(EaDvfsScheduler::new()),
        Box::new(OraclePredictor::new(profile)),
    );
    assert_eq!(r.missed(), 0, "jobs missed: {}", r.missed());
}

/// Pessimistic prediction makes EA-DVFS cautious but must not break it;
/// wild optimism degrades toward LSA-like behaviour.
#[test]
fn biased_prediction_degrades_gracefully() {
    let mean_rate = |factor: f64| {
        let mut total = 0.0;
        for seed in 0..6u64 {
            let mut sc =
                PaperScenario::new(0.4, 150.0).with_predictor(PredictorKind::Biased { factor });
            sc.horizon_units = 4_000;
            total += sc.run(PolicyKind::EaDvfs, seed).miss_rate();
        }
        total / 6.0
    };
    let exact = mean_rate(1.0);
    let pessimistic = mean_rate(0.5);
    let optimistic = mean_rate(2.0);
    // Exact prediction should be no worse than either distortion, with
    // a little tolerance for seed noise.
    assert!(
        exact <= pessimistic + 0.05,
        "exact {exact:.3} vs pessimistic {pessimistic:.3}"
    );
    assert!(
        exact <= optimistic + 0.05,
        "exact {exact:.3} vs optimistic {optimistic:.3}"
    );
}
