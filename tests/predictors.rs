//! Predictor-in-the-loop integration tests: EA-DVFS driven by every
//! predictor still produces sane runs, and better prediction does not
//! hurt.

use harvest_rt::prelude::*;

fn run_with_predictor(kind: PredictorKind, seed: u64) -> SimResult {
    let mut scenario = PaperScenario::new(0.4, 500.0).with_predictor(kind);
    scenario.horizon_units = 4_000;
    scenario.run(PolicyKind::EaDvfs, seed)
}

#[test]
fn all_predictors_complete_runs() {
    for kind in [
        PredictorKind::Oracle,
        PredictorKind::Ewma,
        PredictorKind::MovingAverage { window: 200 },
        PredictorKind::Persistence,
    ] {
        let r = run_with_predictor(kind, 1);
        assert!(r.released() > 0, "{}: no jobs released", kind.name());
        assert!(
            r.decided()
                + r.jobs
                    .iter()
                    .filter(|j| matches!(j.outcome, JobOutcome::Pending))
                    .count()
                == r.released(),
            "{}: record bookkeeping broken",
            kind.name()
        );
        // Energy accounting still closes.
        let input = r.energy.initial_level + r.energy.harvested;
        let output = r.energy.consumed + r.energy.overflow + r.energy.final_level;
        assert!(
            (input - output).abs() < 1e-5,
            "{}: conservation",
            kind.name()
        );
    }
}

#[test]
fn oracle_prediction_is_competitive() {
    // Averaged over seeds, the oracle-driven EA-DVFS should miss no more
    // than the persistence-driven one (it cannot be fooled by lulls).
    let seeds = 0..8u64;
    let mean = |kind: PredictorKind| -> f64 {
        let mut total = 0.0;
        for s in seeds.clone() {
            total += run_with_predictor(kind, s).miss_rate();
        }
        total / 8.0
    };
    let oracle = mean(PredictorKind::Oracle);
    let persistence = mean(PredictorKind::Persistence);
    assert!(
        oracle <= persistence + 0.05,
        "oracle {oracle:.3} should not lose badly to persistence {persistence:.3}"
    );
}

#[test]
fn predictor_choice_changes_behaviour() {
    // The predictors genuinely differ: at least one seed must yield a
    // different job outcome vector between oracle and persistence.
    let mut any_diff = false;
    for seed in 0..8 {
        let a = run_with_predictor(PredictorKind::Oracle, seed);
        let b = run_with_predictor(PredictorKind::Persistence, seed);
        if a.jobs != b.jobs {
            any_diff = true;
            break;
        }
    }
    assert!(any_diff, "predictors should influence scheduling");
}
