//! Property-based invariants of the closed-loop simulator, checked on
//! random paper-style scenarios across all four policies.

use harvest_rt::prelude::*;
use proptest::prelude::*;

/// A random but valid §5.1-style scenario.
fn scenario_strategy() -> impl Strategy<Value = (PolicyKind, f64, f64, u64)> {
    (
        prop_oneof![
            Just(PolicyKind::Edf),
            Just(PolicyKind::Lsa),
            Just(PolicyKind::EaDvfs),
            Just(PolicyKind::GreedyStretch),
        ],
        0.1f64..0.9,     // utilization
        50.0f64..3000.0, // capacity
        0u64..1_000,     // seed
    )
}

fn short_scenario(utilization: f64, capacity: f64) -> PaperScenario {
    let mut s = PaperScenario::new(utilization, capacity).with_sampling(100);
    s.horizon_units = 2_000; // keep each proptest case fast
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stored energy never leaves [0, capacity].
    #[test]
    fn storage_level_stays_bounded((policy, u, c, seed) in scenario_strategy()) {
        let r = short_scenario(u, c).run(policy, seed);
        for &(_, level) in &r.samples {
            prop_assert!(level >= -1e-9 && level <= c + 1e-9,
                "level {level} outside [0, {c}]");
        }
        prop_assert!(r.energy.final_level >= -1e-9 && r.energy.final_level <= c + 1e-9);
    }

    /// Energy conservation: initial + harvested = consumed + overflow +
    /// final (ideal storage; `consumed` counts only energy actually
    /// delivered, so the deficit does not enter the identity).
    #[test]
    fn energy_is_conserved((policy, u, c, seed) in scenario_strategy()) {
        let r = short_scenario(u, c).run(policy, seed);
        let input = r.energy.initial_level + r.energy.harvested;
        let output = r.energy.consumed + r.energy.overflow + r.energy.final_level;
        prop_assert!((input - output).abs() < 1e-5,
            "in {input} vs out {output} ({:?})", r.energy);
    }

    /// Time accounting: busy + idle = horizon; stall ⊆ idle.
    #[test]
    fn time_is_conserved((policy, u, c, seed) in scenario_strategy()) {
        let r = short_scenario(u, c).run(policy, seed);
        let total = r.busy_time() + r.idle_time;
        prop_assert!((total - 2_000.0).abs() < 1e-6, "total {total}");
        prop_assert!(r.stall_time <= r.idle_time + 1e-9);
    }

    /// Completions never land after the deadline; records are
    /// structurally sound.
    #[test]
    fn completions_respect_deadlines((policy, u, c, seed) in scenario_strategy()) {
        let r = short_scenario(u, c).run(policy, seed);
        for job in &r.jobs {
            match job.outcome {
                JobOutcome::Completed { at } => {
                    prop_assert!(at <= job.deadline,
                        "job {:?} completed at {at} after deadline {}", job.id, job.deadline);
                    prop_assert!(at >= job.arrival);
                }
                JobOutcome::Missed { completed: Some(at) } => {
                    prop_assert!(at > job.deadline);
                }
                _ => {}
            }
            prop_assert!(job.deadline > job.arrival);
            prop_assert!(job.energy >= -1e-9);
        }
    }

    /// Runs are bit-for-bit deterministic.
    #[test]
    fn runs_are_deterministic((policy, u, c, seed) in scenario_strategy()) {
        let a = short_scenario(u, c).run(policy, seed);
        let b = short_scenario(u, c).run(policy, seed);
        prop_assert_eq!(a.jobs, b.jobs);
        prop_assert_eq!(a.energy, b.energy);
        prop_assert_eq!(a.samples, b.samples);
    }

    /// The consumed energy never exceeds what physics allows, and some
    /// work gets done whenever jobs were released and energy existed.
    #[test]
    fn consumption_is_physical((policy, u, c, seed) in scenario_strategy()) {
        let r = short_scenario(u, c).run(policy, seed);
        prop_assert!(r.energy.consumed <= r.energy.initial_level + r.energy.harvested + 1e-6);
        prop_assert!(r.energy.overflow >= -1e-9);
        prop_assert!(r.energy.deficit <= 1.0,
            "deficit {} should stay within event-rounding slop", r.energy.deficit);
    }
}

/// Deadline-missing jobs under the abort policy never record completion.
#[test]
fn aborted_jobs_have_no_completion_time() {
    let r = PaperScenario::new(0.8, 60.0).run(PolicyKind::Lsa, 3);
    for job in &r.jobs {
        if let JobOutcome::Missed { completed } = job.outcome {
            assert_eq!(completed, None, "abort policy must drop late jobs");
        }
    }
}

/// The sampled series has the exact grid the config asked for.
#[test]
fn sample_grid_is_exact() {
    let r = PaperScenario::new(0.4, 500.0)
        .with_sampling(250)
        .run(PolicyKind::EaDvfs, 0);
    assert_eq!(r.samples.len(), 40);
    for (k, &(t, _)) in r.samples.iter().enumerate() {
        assert_eq!(t, SimTime::from_whole_units(250 * k as i64));
    }
}
