//! Vendored minimal stand-in for `serde_json`.
//!
//! Serializes the vendored `serde::Value` data model to JSON text and parses
//! JSON text back. Covers the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], the
//! re-exported [`Value`], and a `Result`/`Error` pair.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts a serializable type into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a type from a [`Value`].
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::msg(format!(
                    "non-finite float {n} is not valid JSON"
                )));
            }
            // `{:?}` keeps integral floats float-typed ("1.0") and emits
            // shortest round-trip representations otherwise.
            out.push_str(&format!("{n:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => {
                            return Err(Error::msg(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits at the cursor.
    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("fig5".to_string())),
            ("seed".to_string(), Value::U64(3)),
            (
                "power".to_string(),
                Value::Seq(vec![Value::F64(1.0), Value::F64(2.5)]),
            ),
            ("none".to_string(), Value::Null),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        // Unsigned values re-parse as I64 (the narrower variant wins), so
        // compare semantically rather than structurally.
        assert_eq!(back["name"], "fig5");
        assert_eq!(back["seed"], 3u64);
        assert_eq!(
            back["power"],
            Value::Seq(vec![Value::F64(1.0), Value::F64(2.5)])
        );
        assert!(back["none"].is_null());
        assert_eq!(back["ok"], true);
        assert!(text.contains("\"power\":[1.0,2.5]"));
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Map(vec![("a".to_string(), Value::Seq(vec![Value::I64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\nbé", "n": -3, "x": 1e-3}"#).unwrap();
        assert_eq!(v["s"], "a\nb\u{e9}");
        assert_eq!(v["n"], -3);
        assert_eq!(v["x"], 1e-3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
