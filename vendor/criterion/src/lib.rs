//! Vendored minimal stand-in for `criterion`.
//!
//! A small wall-clock benchmark harness with the API surface this
//! workspace's benches use: `Criterion`, `benchmark_group` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from the real crate: no statistical analysis beyond a median
//! over samples, and results are additionally collected in a process-global
//! registry ([`all_results`]) so a custom `main` can emit a machine-readable
//! report (used for `BENCH_PR1.json`).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::Instant;

/// One measured benchmark: id and median nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or `group/function/param`).
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Returns every result measured so far in this process (in run order).
pub fn all_results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// Identifies a benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter (`name/param`).
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_secs: f64,
}

impl Bencher {
    /// Runs `routine` for the requested number of iterations and records
    /// the elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_secs = start.elapsed().as_secs_f64();
    }
}

/// Harness entry point; create via `Criterion::default()`.
pub struct Criterion {
    sample_size: usize,
    /// Wall-clock budget per benchmark for the measurement phase (seconds).
    measurement_secs: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_secs: 0.25,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark. A single
    /// sample is allowed for smoke runs that only check the bench
    /// still executes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, budget: std::time::Duration) -> &mut Self {
        self.measurement_secs = budget.as_secs_f64().max(1e-6);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.name, self.sample_size, self.measurement_secs, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_secs: self.measurement_secs,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_secs: f64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_bench(&full, self.sample_size, self.measurement_secs, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_bench(&full, self.sample_size, self.measurement_secs, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_secs: f64,
    mut f: F,
) {
    let mut b = Bencher {
        iters: 1,
        elapsed_secs: 0.0,
    };

    // Warmup doubles as calibration: estimate the per-iteration cost.
    f(&mut b);
    let per_iter = (b.elapsed_secs / b.iters as f64).max(1e-9);

    // Size each sample at ~1/sample_size of the measurement budget, and
    // shed samples (down to 3) rather than blow the budget when a single
    // iteration is already slow.
    let target_sample_secs = measurement_secs / sample_size as f64;
    let iters = ((target_sample_secs / per_iter).ceil() as u64).clamp(1, 1_000_000_000);
    let mut samples = sample_size;
    let projected = per_iter * iters as f64 * samples as f64;
    if projected > 2.0 * measurement_secs {
        let affordable = (2.0 * measurement_secs / (per_iter * iters as f64)) as usize;
        samples = affordable.clamp(sample_size.min(3), sample_size);
    }

    let mut measured: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.iters = iters;
        f(&mut b);
        measured.push(b.elapsed_secs / iters as f64 * 1e9);
    }
    measured.sort_by(|a, b| a.total_cmp(b));
    let median = if measured.len() % 2 == 1 {
        measured[measured.len() / 2]
    } else {
        0.5 * (measured[measured.len() / 2 - 1] + measured[measured.len() / 2])
    };

    println!("bench: {id:<55} {median:>14.1} ns/iter  (x{iters}, n={samples})");
    RESULTS.lock().unwrap().push(BenchResult {
        id: id.to_string(),
        ns_per_iter: median,
        iters_per_sample: iters,
        samples,
    });
}

/// Defines a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_registers() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_secs: 0.01,
        };
        c.bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        let results = all_results();
        assert!(results
            .iter()
            .any(|r| r.id == "smoke" && r.ns_per_iter > 0.0));
        assert!(results.iter().any(|r| r.id == "grp/with_input/7"));
    }
}
