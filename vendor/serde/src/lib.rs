//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `serde` cannot be fetched. This crate provides
//! the small API surface the workspace actually uses — `Serialize` /
//! `Deserialize` traits plus derive macros — backed by a simple
//! self-describing [`Value`] data model instead of serde's
//! serializer/deserializer visitors. `serde_json` (also vendored)
//! converts [`Value`] to and from JSON text.
//!
//! Representation conventions match serde's defaults for the shapes this
//! workspace uses: structs are maps, newtype structs are their inner
//! value, enums are externally tagged (`"Variant"` for unit variants,
//! `{"Variant": payload}` otherwise), and `#[serde(transparent)]` is
//! honored on single-field structs.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside `i64` range or serialized from an
    /// unsigned type.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup on maps; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on sequences.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(index),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) => u64::try_from(n).ok(),
            Value::U64(n) => Some(n),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is a map.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short variant name for diagnostics.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Map member access; yields `Null` for misses (like `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Sequence element access; yields `Null` for misses.
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::I64(n) => i128::from(n) == i128::from(*other),
                    Value::U64(n) => i128::from(n) == i128::from(*other),
                    _ => false,
                }
            }
        }
    )*};
}

impl_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can convert itself into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes an instance from the value data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Helpers used by derive-generated code.
// ---------------------------------------------------------------------

/// Looks up a struct field in a map value; missing keys deserialize as
/// `Null` so `Option` fields tolerate omission.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Map(_) => T::from_value(v.get(name).unwrap_or(&NULL))
            .map_err(|e| DeError(format!("field `{name}`: {e}"))),
        other => Err(DeError(format!(
            "expected map with field `{name}`, got {}",
            other.kind()
        ))),
    }
}

/// Looks up a tuple-struct / tuple-variant element in a sequence value.
pub fn de_element<T: Deserialize>(v: &Value, index: usize) -> Result<T, DeError> {
    match v {
        Value::Seq(items) => {
            let item = items
                .get(index)
                .ok_or_else(|| DeError(format!("sequence too short (no element {index})")))?;
            T::from_value(item).map_err(|e| DeError(format!("element {index}: {e}")))
        }
        other => Err(DeError(format!("expected sequence, got {}", other.kind()))),
    }
}

/// Splits an externally tagged enum value into `(variant, payload)`.
pub fn enum_variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(tag) => Ok((tag, None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(DeError(format!(
            "expected externally tagged enum (string or single-entry map), got {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------
// Primitive and container impls.
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError(format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError(format!("expected string, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single character, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected sequence, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($(de_element::<$name>(v, $idx)?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
