//! Vendored minimal stand-in for `proptest`.
//!
//! Random property testing with the surface this workspace uses: the
//! `proptest!` macro, range / tuple / `Just` / `prop_oneof!` / vec
//! strategies, `prop_map`, `any::<bool>()`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! counterexample), and case seeds are derived deterministically from the
//! test name, so runs are reproducible without a persistence file.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (see `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Strategy backed by a plain generator function.
    pub struct FnStrategy<T>(pub fn(&mut StdRng) -> T);

    impl<T> Strategy for FnStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

pub mod arbitrary {
    use super::strategy::FnStrategy;
    use rand::Rng;

    /// Types with a canonical full-domain strategy, used by [`crate::any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        fn arbitrary() -> FnStrategy<Self>;
    }

    impl Arbitrary for bool {
        fn arbitrary() -> FnStrategy<bool> {
            FnStrategy(|rng| rng.gen::<bool>())
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary() -> FnStrategy<u8> {
            FnStrategy(|rng| rng.gen::<u32>() as u8)
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary() -> FnStrategy<u64> {
            FnStrategy(|rng| rng.gen::<u64>())
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary() -> FnStrategy<i64> {
            FnStrategy(|rng| rng.gen::<u64>() as i64)
        }
    }
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: arbitrary::Arbitrary>() -> strategy::FnStrategy<T> {
    T::arbitrary()
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds for [`vec`]: an exact size or a (half-open /
    /// inclusive) range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property: runs `body` for each case with a per-case rng seeded
/// deterministically from the test name. Called by the `proptest!` macro.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let case_seed = seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(case_seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest `{name}` failed on case {case} (seed {case_seed:#x}): {e}");
        }
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(stringify!($name), &__config, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                // The IIFE gives `?` and early returns a scope; the
                // "redundant" call is the point.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with the
/// generated inputs reported) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_runs() {
        let strat = (0i64..100, 0.0f64..1.0);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_proptest("determinism", &ProptestConfig::with_cases(16), |rng| {
                out.push(strat.generate(rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
        assert_eq!(first.len(), 16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_respect_bounds(n in 3i64..9, x in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x = {x}");
        }

        fn vec_and_oneof((items, flag) in (
            crate::collection::vec(0u64..10, 2..5),
            prop_oneof![Just(true), Just(false)],
        )) {
            prop_assert!(items.len() >= 2 && items.len() < 5);
            prop_assert!(items.iter().all(|&v| v < 10));
            let _ = flag;
        }

        fn mapped_strategy(v in (1i64..4).prop_map(|n| n * 10)) {
            prop_assert_eq!(v % 10, 0);
            prop_assert!((10..40).contains(&v));
        }

        fn any_bool_both_values(b in any::<bool>()) {
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing` failed")]
    fn failures_panic_with_context() {
        crate::run_proptest("failing", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
