//! Vendored minimal stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! simplified `Value`-based traits in the vendored `serde` crate. The input
//! item is parsed by scanning raw `proc_macro` token trees (no `syn`/`quote`
//! available offline) and the impl is generated as source text.
//!
//! Supported shapes — the ones this workspace uses:
//! - structs with named fields (maps), tuple structs (newtype = inner value,
//!   longer tuples = sequences), unit structs;
//! - enums with unit / tuple / struct variants, externally tagged;
//! - `#[serde(transparent)]` on single-field structs;
//! - a single list of plain type parameters (each bounded by the derived
//!   trait), which covers `Record<T>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

struct Item {
    name: String,
    generics: Vec<String>,
    transparent: bool,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: VariantPayload,
}

enum VariantPayload {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

/// Skips a `#[...]` attribute at `i`, returning whether one was present and
/// whether it was `#[serde(transparent)]`.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    if is_punct(tokens.get(*i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let s = g.stream().to_string();
                let transparent = s.starts_with("serde") && s.contains("transparent");
                *i += 2;
                return (true, transparent);
            }
        }
    }
    (false, false)
}

/// Skips a `pub` / `pub(...)` visibility at `i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if is_ident(tokens.get(*i), "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Advances `i` past tokens until a comma at angle-bracket depth zero
/// (consuming the comma) or the end of `tokens`.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i).0 {}
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        skip_to_top_level_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i).0 {}
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let p = VariantPayload::Named(parse_named_fields(g.stream()));
                i += 1;
                p
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let p = VariantPayload::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                p
            }
            _ => VariantPayload::Unit,
        };
        skip_to_top_level_comma(&tokens, &mut i);
        variants.push(Variant { name, payload });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;
    loop {
        let (was_attr, was_transparent) = skip_attr(&tokens, &mut i);
        if !was_attr {
            break;
        }
        transparent = transparent || was_transparent;
    }
    skip_visibility(&tokens, &mut i);
    let kind_kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    i += 1;

    let mut generics = Vec::new();
    if is_punct(tokens.get(i), '<') {
        i += 1;
        let mut depth = 1i32;
        let mut expecting = true;
        let mut after_lifetime = false;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting = true;
                    after_lifetime = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => after_lifetime = true,
                TokenTree::Ident(id) if depth == 1 && expecting => {
                    if !after_lifetime {
                        generics.push(id.to_string());
                    }
                    after_lifetime = false;
                    expecting = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Skip an optional `where` clause: advance to the body group (or the
    // trailing `;` of a tuple/unit struct).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(_) => break,
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let kind = match kind_kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: expected enum body, got {other:?}"),
        },
        other => panic!("derive: unsupported item kind `{other}`"),
    };

    Item {
        name,
        generics,
        transparent,
        kind,
    }
}

/// Builds `(impl-generics, self-type)` strings, bounding every type
/// parameter by the derived trait.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params = item.generics.join(", ");
        let bounds = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        (format!("<{bounds}>"), format!("{}<{}>", item.name, params))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, self_ty) = impl_header(item, "Serialize");
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        ItemKind::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(vec![{elems}])")
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) if variants.is_empty() => "match *self {}".to_string(),
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let name = &v.name;
                    match &v.payload {
                        VariantPayload::Unit => {
                            format!("Self::{name} => ::serde::Value::Str(\"{name}\".to_string()),")
                        }
                        VariantPayload::Tuple(1) => format!(
                            "Self::{name}(f0) => ::serde::Value::Map(vec![(\"{name}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantPayload::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let elems = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{name}({binds}) => ::serde::Value::Map(vec![(\"{name}\"\
                                 .to_string(), ::serde::Value::Seq(vec![{elems}]))]),"
                            )
                        }
                        VariantPayload::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{name} {{ {binds} }} => ::serde::Value::Map(vec![(\"{name}\"\
                                 .to_string(), ::serde::Value::Map(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {self_ty} {{\n    fn to_value(&self) -> \
         ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, self_ty) = impl_header(item, "Deserialize");
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "Ok(Self {{ {}: ::serde::Deserialize::from_value(v)? }})",
                fields[0]
            )
        }
        ItemKind::NamedStruct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, \"{f}\")?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("Ok(Self {{ {inits} }})")
        }
        ItemKind::TupleStruct(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        ItemKind::TupleStruct(n) => {
            let inits = (0..*n)
                .map(|i| format!("::serde::de_element(v, {i})?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("Ok(Self({inits}))")
        }
        ItemKind::UnitStruct => "{ let _ = v; Ok(Self) }".to_string(),
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|var| {
                    let name = &var.name;
                    match &var.payload {
                        VariantPayload::Unit => format!("\"{name}\" => Ok(Self::{name}),"),
                        VariantPayload::Tuple(1) => format!(
                            "\"{name}\" => {{ let p = _payload.ok_or_else(|| \
                             ::serde::DeError::msg(\"variant `{name}` expects a payload\"))?; \
                             Ok(Self::{name}(::serde::Deserialize::from_value(p)?)) }}"
                        ),
                        VariantPayload::Tuple(n) => {
                            let inits = (0..*n)
                                .map(|i| format!("::serde::de_element(p, {i})?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{name}\" => {{ let p = _payload.ok_or_else(|| \
                                 ::serde::DeError::msg(\"variant `{name}` expects a payload\"))?; \
                                 Ok(Self::{name}({inits})) }}"
                            )
                        }
                        VariantPayload::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(p, \"{f}\")?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{name}\" => {{ let p = _payload.ok_or_else(|| \
                                 ::serde::DeError::msg(\"variant `{name}` expects a payload\"))?; \
                                 Ok(Self::{name} {{ {inits} }}) }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let (tag, _payload) = ::serde::enum_variant(v)?;\n        match tag {{\n         \
                 \u{20}  {arms}\n            other => Err(::serde::DeError::msg(format!(\"unknown \
                 variant `{{other}}`\"))),\n        }}"
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {self_ty} {{\n    fn from_value(v: \
         &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        \
         {body}\n    }}\n}}\n"
    )
}

/// Derives `serde::Serialize` (the vendored `Value`-based trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    TokenStream::from_str(&code).expect("derive(Serialize): generated code failed to parse")
}

/// Derives `serde::Deserialize` (the vendored `Value`-based trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    TokenStream::from_str(&code).expect("derive(Deserialize): generated code failed to parse")
}
