//! Vendored minimal stand-in for the `rand` crate.
//!
//! Provides the small surface this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension trait with
//! `gen::<f64>()` / `gen::<bool>()` / `gen_range(..)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, decent
//! statistical quality, and fully deterministic. Determinism only needs to
//! hold *within* this workspace (all expected values in tests are produced by
//! the same generator), so matching the real `StdRng` stream is not required.

/// A random number generator producing 64-bit outputs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire-style multiply-shift (the mild
/// modulo bias is irrelevant at the bounds this workspace uses).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let n = rng.gen_range(0..7usize);
            assert!(n < 7);
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let k = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
